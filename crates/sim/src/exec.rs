//! Deterministic parallel execution of independent simulation tasks.
//!
//! GROW processes graph clusters independently (Section V-C), and the
//! multi-PE model of Figure 24 exploits exactly that independence — so the
//! *simulator* can too: each engine fans per-cluster simulations across
//! threads and merges the partial reports in cluster order, which makes
//! the result bit-identical to a serial run by construction.
//!
//! The environment this workspace builds in has no crates.io access, so
//! the fan-out is built on `std::thread::scope` with an atomic work queue
//! instead of rayon; the API surface is [`parallel_map`] plus the
//! bounded plan/replay pipelines [`bounded_pipeline`] /
//! [`bounded_pipeline_seq`], all of which a future rayon backend could
//! replace without touching call sites.
//!
//! Parallelism is on by default and can be disabled three ways:
//!
//! * `GROW_SERIAL=1` in the environment (e.g. for profiling);
//! * [`with_mode`]`(ExecMode::Serial, ..)` around a region of code (used
//!   by the determinism tests);
//! * `GROW_THREADS=n` / [`with_workers`] to set the worker count
//!   explicitly (`1` is equivalent to serial; values above the hardware
//!   thread count oversubscribe, which the determinism tests use to
//!   exercise real interleaving even on single-core machines).

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::fault::{self, FaultContext, FaultSite};

/// How [`parallel_map`] executes its tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Fan tasks across OS threads (the default).
    Parallel,
    /// Run tasks one by one on the calling thread.
    Serial,
}

thread_local! {
    /// Thread-local mode override: 0 = unset (consult the environment),
    /// 1 = parallel, 2 = serial. Thread-local rather than process-wide so
    /// concurrent callers (e.g. parallel test threads) cannot perturb each
    /// other: [`parallel_map`] always consults the mode on the *calling*
    /// thread, before any fan-out.
    static MODE_OVERRIDE: Cell<u8> = const { Cell::new(0) };
    /// Thread-local worker-count override (0 = unset).
    static WORKERS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

impl ExecMode {
    /// The mode in effect on this thread: an active [`with_mode`] override
    /// wins, then `GROW_SERIAL`, then the parallel default.
    pub fn current() -> ExecMode {
        match MODE_OVERRIDE.get() {
            1 => ExecMode::Parallel,
            2 => ExecMode::Serial,
            _ => match std::env::var_os("GROW_SERIAL") {
                Some(v) if v != "0" && !v.is_empty() => ExecMode::Serial,
                _ => ExecMode::Parallel,
            },
        }
    }

    fn encode(self) -> u8 {
        match self {
            ExecMode::Parallel => 1,
            ExecMode::Serial => 2,
        }
    }
}

/// Restores a thread-local [`Cell`] override on drop (also on panic).
struct Restore<T: Copy + 'static>(&'static std::thread::LocalKey<Cell<T>>, T);

impl<T: Copy + 'static> Drop for Restore<T> {
    fn drop(&mut self) {
        self.0.set(self.1);
    }
}

/// Runs `f` with this thread's execution mode forced to `mode`, restoring
/// the previous override afterwards (also on panic). Scoped to the calling
/// thread; nesting works.
pub fn with_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    let _restore = Restore(&MODE_OVERRIDE, MODE_OVERRIDE.replace(mode.encode()));
    f()
}

/// Runs `f` with this thread's parallel worker count forced to `workers`,
/// restoring the previous override afterwards (also on panic). Scoped to
/// the calling thread like [`with_mode`].
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    let _restore = Restore(&WORKERS_OVERRIDE, WORKERS_OVERRIDE.replace(workers.max(1)));
    f()
}

/// A snapshot of the calling thread's execution overrides ([`with_mode`] /
/// [`with_workers`]), for replaying them on another thread.
///
/// The overrides are thread-local by design, but a service that accepts
/// work on one thread and simulates on a dedicated worker thread (the
/// async serving front end) must execute *as if* on the submitting
/// thread, or `with_mode(ExecMode::Serial, ..)` around the service would
/// silently not apply. Capture on the controlling thread, then wrap the
/// worker's processing in [`ExecContext::scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecContext {
    mode: u8,
    workers: usize,
}

impl ExecContext {
    /// Captures the current thread's override state (including "no
    /// override set", which leaves environment resolution intact).
    pub fn capture() -> ExecContext {
        ExecContext {
            mode: MODE_OVERRIDE.get(),
            workers: WORKERS_OVERRIDE.get(),
        }
    }

    /// Runs `f` with this snapshot's overrides in effect on the current
    /// thread, restoring the previous state afterwards (also on panic).
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let _mode = Restore(&MODE_OVERRIDE, MODE_OVERRIDE.replace(self.mode));
        let _workers = Restore(&WORKERS_OVERRIDE, WORKERS_OVERRIDE.replace(self.workers));
        f()
    }
}

/// The explicit worker-count override in effect on the calling thread,
/// if any: a [`with_workers`] scope wins over `GROW_THREADS` in the
/// environment; `None` means resolution would fall back to the hardware
/// thread count. Exposed so schedulers above the fan-out (the serving
/// layer's parallelism governor) can honor an enclosing override instead
/// of silently widening past it.
pub fn configured_workers() -> Option<usize> {
    match WORKERS_OVERRIDE.get() {
        0 => std::env::var("GROW_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0),
        n => Some(n),
    }
}

/// Worker-thread count for `tasks` tasks: an explicit override
/// ([`with_workers`] or `GROW_THREADS`) wins — including oversubscription
/// — otherwise the hardware thread count, never more than the task count.
fn worker_count(tasks: usize) -> usize {
    let explicit = configured_workers();
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    explicit.unwrap_or_else(hw).min(tasks)
}

/// Maps `f` over `items`, preserving order in the returned vector.
///
/// Under [`ExecMode::Parallel`] the items are processed by a pool of
/// scoped threads pulling from an atomic queue (dynamic load balancing —
/// cluster sizes are skewed on real graphs); each result is written to its
/// input's slot, so the output order — and therefore any order-dependent
/// merge the caller performs — is identical to the serial path.
///
/// `f` receives the item index alongside the item.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = match ExecMode::current() {
        ExecMode::Serial => 1,
        ExecMode::Parallel => worker_count(n),
    };
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panics: Vec<Mutex<Option<Box<dyn Any + Send>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let fault_ctx = FaultContext::capture();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                fault_ctx.scope(|| loop {
                    if panicked.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("item slot poisoned")
                        .take()
                        .expect("each slot is taken exactly once");
                    // Capture the payload instead of letting the scope
                    // replace it with "a scoped thread panicked": the serve
                    // supervisor downcasts payloads (e.g. `SimFault`) to
                    // classify failures.
                    match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        Ok(r) => *results[i].lock().expect("result slot poisoned") = Some(r),
                        Err(payload) => {
                            *panics[i].lock().expect("panic slot poisoned") = Some(payload);
                            panicked.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                })
            });
        }
    });

    // Re-raise the lowest-index panic. Indices are claimed in increasing
    // order and a claimed task always runs, so the lowest recorded index is
    // the lowest panicking task overall — exactly where the serial leg
    // fails first.
    for slot in &panics {
        if let Some(payload) = slot.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
    }

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// Shared state of a bounded plan/replay pipeline: producers claim item
/// indices, park results in `ready`, and throttle themselves against the
/// consumer's progress so at most `depth` results are in flight.
struct PipeState<R> {
    ready: Vec<Option<R>>,
    /// Next item index a producer may claim.
    next: usize,
    /// Number of results the consumer has taken (= index of the oldest
    /// outstanding item).
    consumed: usize,
    /// Set when either side panics so the other side stops waiting.
    dead: bool,
}

/// Marks the pipeline dead if dropped during a panic, waking the peers so
/// they stop waiting for a result that will never arrive.
struct PipePoison<'a, R> {
    state: &'a Mutex<PipeState<R>>,
    cv: &'a Condvar,
    armed: bool,
}

impl<R> PipePoison<'_, R> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<R> Drop for PipePoison<'_, R> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st.dead = true;
            self.cv.notify_all();
        }
    }
}

/// Runs a bounded-depth producer/consumer pipeline: `produce` plans item
/// `k+1` (on worker threads) while `consume` replays item `k` on the
/// calling thread, strictly in index order.
///
/// This is the overlap primitive behind the engines' plan/replay split:
/// the plan pass is pure (safe to run ahead, out of order, on any
/// thread), the replay pass owns the cycle-accurate machine state and
/// must observe plans in index order — which the consumer guarantees by
/// construction, so the result is bit-identical to the serial
/// interleaving `produce(0); consume(0); produce(1); ...` that runs under
/// [`ExecMode::Serial`] or a single worker.
///
/// `depth` bounds how far producers may run ahead of the consumer
/// (`0` = auto: worker count + 1), which bounds the number of planned-but
/// -unreplayed results alive at once.
///
/// # Panics
///
/// Propagates a panic from `produce` or `consume`.
pub fn bounded_pipeline<T, R, F, C>(items: Vec<T>, depth: usize, produce: F, mut consume: C)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    C: FnMut(usize, R),
{
    let n = items.len();
    let workers = match ExecMode::current() {
        ExecMode::Serial => 1,
        ExecMode::Parallel => worker_count(n),
    };
    if workers <= 1 || n <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            let r = produce(i, item);
            fault::trip_at(FaultSite::ExecHandoff, i as u64 + 1);
            consume(i, r);
        }
        return;
    }
    let depth = if depth == 0 { workers + 1 } else { depth };

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let state = Mutex::new(PipeState {
        ready: (0..n).map(|_| None).collect(),
        next: 0,
        consumed: 0,
        dead: false,
    });
    let cv = Condvar::new();
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());
    let fault_ctx = FaultContext::capture();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                fault_ctx.scope(|| loop {
                    let i = {
                        let mut st = state.lock().expect("pipeline state poisoned");
                        loop {
                            if st.dead || st.next >= n {
                                return;
                            }
                            if st.next < st.consumed + depth {
                                break;
                            }
                            st = cv.wait(st).expect("pipeline state poisoned");
                        }
                        let i = st.next;
                        st.next += 1;
                        i
                    };
                    let item = slots[i]
                        .lock()
                        .expect("item slot poisoned")
                        .take()
                        .expect("each slot is taken exactly once");
                    // Capture the payload (rather than letting the scope
                    // discard it) so supervisors can downcast `SimFault`,
                    // and mark the pipeline dead so the consumer stops
                    // waiting for a result that will never arrive.
                    match catch_unwind(AssertUnwindSafe(|| produce(i, item))) {
                        Ok(r) => {
                            let mut st = state.lock().expect("pipeline state poisoned");
                            st.ready[i] = Some(r);
                            cv.notify_all();
                        }
                        Err(payload) => {
                            panics
                                .lock()
                                .expect("panic list poisoned")
                                .push((i, payload));
                            let mut st = state.lock().expect("pipeline state poisoned");
                            st.dead = true;
                            cv.notify_all();
                            return;
                        }
                    }
                })
            });
        }

        // Consume in index order on the calling thread. If `consume`
        // panics, the poison guard wakes the producers so the scope can
        // join them and propagate the panic instead of deadlocking.
        let poison = PipePoison {
            state: &state,
            cv: &cv,
            armed: true,
        };
        for i in 0..n {
            let r = {
                let mut st = state.lock().expect("pipeline state poisoned");
                loop {
                    if let Some(r) = st.ready[i].take() {
                        st.consumed = i + 1;
                        cv.notify_all();
                        break r;
                    }
                    if st.dead {
                        // A producer panicked; the payload is re-raised
                        // after the scope joins.
                        return;
                    }
                    st = cv.wait(st).expect("pipeline state poisoned");
                }
            };
            fault::trip_at(FaultSite::ExecHandoff, i as u64 + 1);
            consume(i, r);
        }
        poison.disarm();
    });

    resume_lowest(panics);
}

/// Re-raises the lowest-index captured producer panic, if any. Producers
/// claim indices in increasing order and a claimed item always runs, so
/// the lowest recorded index is where the serial leg would fail first.
fn resume_lowest(panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>>) {
    let mut recorded = panics.into_inner().expect("panic list poisoned");
    recorded.sort_by_key(|(i, _)| *i);
    if let Some((_, payload)) = recorded.into_iter().next() {
        resume_unwind(payload);
    }
}

/// Like [`bounded_pipeline`] but with a *stateful* producer: `produce`
/// runs on a single dedicated thread, strictly in index order, so it may
/// carry mutable state from item to item (e.g. a cache model walked
/// sequentially). The consumer still replays in index order on the
/// calling thread, overlapped with production up to `depth` outstanding
/// results (`0` = auto).
///
/// Under [`ExecMode::Serial`] or a single worker this degrades to the
/// exact serial interleaving, so results are bit-identical by
/// construction.
///
/// # Panics
///
/// Propagates a panic from `produce` or `consume`.
pub fn bounded_pipeline_seq<T, R, F, C>(items: Vec<T>, depth: usize, mut produce: F, mut consume: C)
where
    T: Send,
    R: Send,
    F: FnMut(usize, T) -> R + Send,
    C: FnMut(usize, R),
{
    let n = items.len();
    let workers = match ExecMode::current() {
        ExecMode::Serial => 1,
        ExecMode::Parallel => worker_count(n),
    };
    if workers <= 1 || n <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            let r = produce(i, item);
            fault::trip_at(FaultSite::ExecHandoff, i as u64 + 1);
            consume(i, r);
        }
        return;
    }
    let depth = if depth == 0 { 2 } else { depth };

    let state = Mutex::new(PipeState::<R> {
        ready: (0..n).map(|_| None).collect(),
        next: 0,
        consumed: 0,
        dead: false,
    });
    let cv = Condvar::new();
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());
    let fault_ctx = FaultContext::capture();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            fault_ctx.scope(|| {
                for (i, item) in items.into_iter().enumerate() {
                    {
                        let mut st = state.lock().expect("pipeline state poisoned");
                        loop {
                            if st.dead {
                                return;
                            }
                            if i < st.consumed + depth {
                                break;
                            }
                            st = cv.wait(st).expect("pipeline state poisoned");
                        }
                    }
                    match catch_unwind(AssertUnwindSafe(|| produce(i, item))) {
                        Ok(r) => {
                            let mut st = state.lock().expect("pipeline state poisoned");
                            st.ready[i] = Some(r);
                            cv.notify_all();
                        }
                        Err(payload) => {
                            panics
                                .lock()
                                .expect("panic list poisoned")
                                .push((i, payload));
                            let mut st = state.lock().expect("pipeline state poisoned");
                            st.dead = true;
                            cv.notify_all();
                            return;
                        }
                    }
                }
            })
        });

        let poison = PipePoison {
            state: &state,
            cv: &cv,
            armed: true,
        };
        for i in 0..n {
            let r = {
                let mut st = state.lock().expect("pipeline state poisoned");
                loop {
                    if let Some(r) = st.ready[i].take() {
                        st.consumed = i + 1;
                        cv.notify_all();
                        break r;
                    }
                    if st.dead {
                        return;
                    }
                    st = cv.wait(st).expect("pipeline state poisoned");
                }
            };
            fault::trip_at(FaultSite::ExecHandoff, i as u64 + 1);
            consume(i, r);
        }
        poison.disarm();
    });

    resume_lowest(panics);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..1000).collect::<Vec<i64>>(), |i, x| {
            assert_eq!(i as i64, x);
            x * x
        });
        assert_eq!(out, (0..1000).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn serial_mode_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let par = parallel_map(items.clone(), |_, x| x.wrapping_mul(0x9e3779b9) >> 7);
        let ser = with_mode(ExecMode::Serial, || {
            parallel_map(items, |_, x| x.wrapping_mul(0x9e3779b9) >> 7)
        });
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![7u8], |i, x| x + i as u8), vec![7]);
    }

    #[test]
    fn with_mode_restores_previous_override() {
        with_mode(ExecMode::Serial, || {
            assert_eq!(ExecMode::current(), ExecMode::Serial);
            with_mode(ExecMode::Parallel, || {
                assert_eq!(ExecMode::current(), ExecMode::Parallel);
            });
            assert_eq!(ExecMode::current(), ExecMode::Serial);
        });
    }

    #[test]
    fn oversubscribed_workers_spawn_and_preserve_order() {
        // Forces real thread fan-out even on single-core machines.
        let out = with_workers(8, || {
            parallel_map((0..500).collect::<Vec<u32>>(), |_, x| {
                x.wrapping_mul(31) ^ 5
            })
        });
        assert_eq!(
            out,
            (0..500)
                .map(|x: u32| x.wrapping_mul(31) ^ 5)
                .collect::<Vec<u32>>()
        );
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..64).map(|i| format!("task-{i}")).collect();
        let out = parallel_map(items, |_, s| s.len());
        assert!(out.iter().all(|&l| (6..=7).contains(&l)));
    }

    #[test]
    fn pipeline_consumes_in_order_and_matches_serial() {
        let items: Vec<u64> = (0..300).collect();
        let run = |mode: ExecMode| {
            with_mode(mode, || {
                with_workers(4, || {
                    let mut trace = Vec::new();
                    bounded_pipeline(
                        items.clone(),
                        3,
                        |i, x| x.wrapping_mul(0x9e3779b9) ^ i as u64,
                        |i, r| trace.push((i, r)),
                    );
                    trace
                })
            })
        };
        let par = run(ExecMode::Parallel);
        let ser = run(ExecMode::Serial);
        assert_eq!(par, ser);
        assert!(par.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert_eq!(par.len(), 300);
    }

    #[test]
    fn pipeline_respects_lookahead_depth() {
        use std::sync::atomic::AtomicUsize;
        let depth = 2usize;
        let consumed = AtomicUsize::new(0);
        let overshoot = AtomicUsize::new(0);
        with_workers(8, || {
            bounded_pipeline(
                (0..200usize).collect::<Vec<_>>(),
                depth,
                |i, _| {
                    // A producer may only hold item i while i < consumed +
                    // depth. The internal consumed index advances one step
                    // before the store below runs, so allow that lag.
                    let c = consumed.load(Ordering::SeqCst);
                    if i > c + depth {
                        overshoot.fetch_add(1, Ordering::SeqCst);
                    }
                    i
                },
                |i, _| {
                    consumed.store(i + 1, Ordering::SeqCst);
                },
            );
        });
        assert_eq!(overshoot.load(Ordering::SeqCst), 0, "producers ran ahead");
    }

    #[test]
    fn pipeline_propagates_producer_panics() {
        let hit = std::panic::catch_unwind(|| {
            with_workers(4, || {
                bounded_pipeline(
                    (0..64usize).collect::<Vec<_>>(),
                    0,
                    |i, x| {
                        assert!(i != 17, "boom");
                        x
                    },
                    |_, _| {},
                );
            });
        });
        assert!(hit.is_err(), "panic in produce must surface to the caller");
    }

    #[test]
    fn pipeline_propagates_consumer_panics() {
        let hit = std::panic::catch_unwind(|| {
            with_workers(4, || {
                bounded_pipeline(
                    (0..64usize).collect::<Vec<_>>(),
                    1,
                    |_, x| x,
                    |i, _| assert!(i != 9, "boom"),
                );
            });
        });
        assert!(hit.is_err(), "panic in consume must surface to the caller");
    }

    #[test]
    fn sequential_pipeline_preserves_producer_state_order() {
        // The producer carries running state (a prefix sum) from item to
        // item: only strict in-order production on a single thread keeps
        // that correct, and the consumer must see the same order.
        let items: Vec<u64> = (1..=257).collect();
        let expect: Vec<u64> = items
            .iter()
            .scan(0u64, |acc, &x| {
                *acc += x;
                Some(*acc)
            })
            .collect();
        for mode in [ExecMode::Parallel, ExecMode::Serial] {
            let got = with_mode(mode, || {
                with_workers(4, || {
                    let mut acc = 0u64;
                    let mut out = Vec::new();
                    bounded_pipeline_seq(
                        items.clone(),
                        0,
                        move |_, x| {
                            acc += x;
                            acc
                        },
                        |_, r| out.push(r),
                    );
                    out
                })
            });
            assert_eq!(got, expect, "{mode:?}");
        }
    }

    #[test]
    fn pipeline_handles_empty_and_singleton() {
        bounded_pipeline(Vec::<u8>::new(), 0, |_, x| x, |_, _| unreachable!());
        let mut seen = Vec::new();
        bounded_pipeline(vec![41u8], 0, |_, x| x + 1, |_, r| seen.push(r));
        assert_eq!(seen, vec![42]);
        bounded_pipeline_seq(Vec::<u8>::new(), 0, |_, x| x, |_, _| unreachable!());
    }
}
