use std::fmt;

use grow_energy::ActivityCounts;
use grow_sim::{CacheStats, Cycle, TrafficStats};

/// Which of the two GCN SpDeGEMM phases a report covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// `X * W` — the dense-ish combination GEMM.
    Combination,
    /// `A * (XW)` — the sparse aggregation GEMM that dominates runtime
    /// (Figure 7).
    Aggregation,
}

/// Per-cluster execution profile, used by the multi-PE fluid model of
/// Figure 24.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterProfile {
    /// MAC-array busy cycles contributed by this cluster.
    pub compute_cycles: u64,
    /// DRAM bytes moved by this cluster (granularity-rounded).
    pub mem_bytes: u64,
    /// End-to-end cycles of the cluster's *detailed* standalone simulation
    /// (the cluster alone on one PE with its full bandwidth share). Stamped
    /// by the pipeline when per-cluster fragments merge; the end-to-end
    /// execution model calibrates its fluid task durations against it so
    /// that a 1-PE run reproduces the detailed timeline exactly. Zero for
    /// hand-built profiles; the post-hoc projection ignores it.
    pub cycles: u64,
}

/// Summary of the multi-PE arrangement attached to every run.
///
/// Under the default post-hoc execution model this is the fluid model of
/// Figure 24 replayed over the run's per-cluster profiles — derived from,
/// never feeding back into, the per-phase counters: two runs that differ
/// only in scheduler have bit-identical [`RunReport::layers`] and differ
/// at most in this summary (the scheduler-invariance suite asserts exactly
/// that). Under the end-to-end model (`exec=e2e`) the summary is instead
/// *derived from* the per-layer [`MultiPeBreakdown`], whose makespans are
/// the report's actual cycle counts.
///
/// This whole-run summary is the deprecated legacy surface; new code
/// should read [`RunReport::multi_pe_breakdown`] for the per-layer,
/// per-phase truth.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPeSummary {
    /// Canonical scheduler name (`rr`, `lpt`, `ws`, or `ca`).
    pub scheduler: &'static str,
    /// Number of PEs projected onto (1 = the paper's base configuration).
    pub pes: usize,
    /// Multi-PE makespan in cycles under the fluid model.
    pub makespan: f64,
    /// Load-imbalance ratio: busiest PE's busy cycles over the mean
    /// (1.0 = perfectly balanced, `pes` = one PE did everything).
    pub imbalance: f64,
    /// Cycles each PE spent executing clusters.
    pub per_pe_busy: Vec<f64>,
}

/// Per-PE accounting of one phase's cluster execution under the
/// end-to-end multi-PE execution model (`exec=e2e`): the configured PEs
/// worked this phase's clusters concurrently, contending for the shared
/// channel, and these are the resulting timelines. Phase fragments that
/// execute back to back (the column-chunk passes of a combination phase)
/// compose by [`PhasePeBusy::absorb_sequential`].
///
/// `None` under the post-hoc model, where the phase cycle count is the
/// plain sequential single-PE composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePeBusy {
    /// Makespan in cycles of the phase's cluster fan-out under the fluid
    /// contention model (excluding any serial prologue, which is part of
    /// [`PhaseReport::cycles`] but occupies every PE alike).
    pub makespan: f64,
    /// Cycles each PE spent with a cluster in execution.
    pub per_pe_busy: Vec<f64>,
    /// Sum of per-cluster in-system durations. Every executing cluster
    /// occupies exactly one PE, so this equals the summed per-PE busy time
    /// (the conservation law the exec-model property suite asserts).
    pub cluster_time: f64,
}

impl PhasePeBusy {
    /// Composes a fragment that executes *after* this one on the same PEs
    /// (an inter-pass barrier): makespans add, per-PE busy times add.
    pub fn absorb_sequential(&mut self, fragment: &PhasePeBusy) {
        self.makespan += fragment.makespan;
        if self.per_pe_busy.len() < fragment.per_pe_busy.len() {
            self.per_pe_busy.resize(fragment.per_pe_busy.len(), 0.0);
        }
        for (slot, b) in self.per_pe_busy.iter_mut().zip(&fragment.per_pe_busy) {
            *slot += b;
        }
        self.cluster_time += fragment.cluster_time;
    }

    /// Load-imbalance ratio of this phase: busiest PE over mean PE busy
    /// time (1.0 for an empty or perfectly balanced phase, and for a
    /// degenerate phase whose busy total is zero or non-finite — never
    /// NaN).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.per_pe_busy.iter().sum();
        if total.is_nan() || total <= 0.0 || self.per_pe_busy.is_empty() {
            return 1.0;
        }
        let max = self.per_pe_busy.iter().cloned().fold(0.0f64, f64::max);
        max * self.per_pe_busy.len() as f64 / total
    }
}

/// Per-layer multi-PE accounting of an end-to-end (`exec=e2e`) run: one
/// [`PhasePeBusy`] per phase per layer. This replaces the single post-hoc
/// [`MultiPeSummary`] as the canonical multi-PE surface — the summary is
/// retained as a deprecated whole-run alias derived from this breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPeBreakdown {
    /// Canonical scheduler name.
    pub scheduler: &'static str,
    /// Number of PEs executed on.
    pub pes: usize,
    /// Per-layer phase breakdowns, in layer order.
    pub layers: Vec<LayerPeBusy>,
}

/// The two phase breakdowns of one layer (see [`MultiPeBreakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPeBusy {
    /// Combination (`X*W`) phase.
    pub combination: PhasePeBusy,
    /// Aggregation (`A*XW`) phase.
    pub aggregation: PhasePeBusy,
}

/// Timing/traffic/cache statistics of one SpDeGEMM phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Which phase this is.
    pub kind: PhaseKind,
    /// End-to-end cycles of the phase.
    pub cycles: Cycle,
    /// Cycles the MAC array was busy.
    pub compute_busy: u64,
    /// Multiply-accumulate operations executed.
    pub mac_ops: u64,
    /// Off-chip traffic, by class.
    pub traffic: TrafficStats,
    /// Row-cache statistics (zeros for engines without a cache).
    pub cache: CacheStats,
    /// 8-byte on-chip SRAM reads.
    pub sram_reads_8b: u64,
    /// 8-byte on-chip SRAM writes.
    pub sram_writes_8b: u64,
    /// Per-cluster profiles (every engine emits one per simulated
    /// cluster; the multi-PE model schedules over them).
    pub cluster_profiles: Vec<ClusterProfile>,
    /// Per-PE accounting when this phase was composed by the end-to-end
    /// multi-PE execution model; `None` under the post-hoc model.
    pub pe: Option<PhasePeBusy>,
}

impl PhaseReport {
    /// An empty report for `kind`.
    pub fn new(kind: PhaseKind) -> Self {
        PhaseReport {
            kind,
            cycles: 0,
            compute_busy: 0,
            mac_ops: 0,
            traffic: TrafficStats::new(),
            cache: CacheStats::default(),
            sram_reads_8b: 0,
            sram_writes_8b: 0,
            cluster_profiles: Vec::new(),
            pe: None,
        }
    }

    /// Total DRAM bytes moved (granularity-rounded).
    pub fn dram_bytes(&self) -> u64 {
        self.traffic.total_fetched()
    }

    /// Absorbs a phase fragment that executes *after* everything already
    /// accumulated: cycle counts add (the single PE processes fragments
    /// back to back), traffic/cache/SRAM counters sum, and cluster
    /// profiles append in order. This is the merge step of the parallel
    /// cluster path — folding per-cluster reports in cluster order makes
    /// the parallel result bit-identical to a serial run.
    pub fn absorb_sequential(&mut self, fragment: PhaseReport) {
        debug_assert_eq!(self.kind, fragment.kind, "fragments belong to one phase");
        self.cycles += fragment.cycles;
        self.compute_busy += fragment.compute_busy;
        self.mac_ops += fragment.mac_ops;
        self.traffic.merge(&fragment.traffic);
        self.cache.merge(&fragment.cache);
        self.sram_reads_8b += fragment.sram_reads_8b;
        self.sram_writes_8b += fragment.sram_writes_8b;
        self.cluster_profiles.extend(fragment.cluster_profiles);
        match (&mut self.pe, fragment.pe) {
            (Some(mine), Some(theirs)) => mine.absorb_sequential(&theirs),
            (mine @ None, theirs @ Some(_)) => *mine = theirs,
            _ => {}
        }
    }
}

/// Reports for the two phases of one GCN layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Combination (`X*W`) phase.
    pub combination: PhaseReport,
    /// Aggregation (`A*XW`) phase.
    pub aggregation: PhaseReport,
}

impl LayerReport {
    /// Cycles of both phases.
    pub fn cycles(&self) -> Cycle {
        self.combination.cycles + self.aggregation.cycles
    }
}

/// Full report of a 2-layer GCN inference run on one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Engine name (paper figure labels).
    pub engine: &'static str,
    /// Per-layer reports.
    pub layers: Vec<LayerReport>,
    /// Multi-PE summary of this run (`None` only for hand-built reports;
    /// every engine attaches its configured summary). Deprecated legacy
    /// surface — see [`RunReport::multi_pe_breakdown`].
    pub multi_pe: Option<MultiPeSummary>,
    /// Canonical name of the execution model that produced the cycle
    /// counts: `"post_hoc"` (single-PE timelines, multi-PE as a
    /// projection) or `"e2e"` (the multi-PE fluid composition *is* the
    /// per-phase cycle count).
    pub exec: &'static str,
}

impl RunReport {
    /// End-to-end inference cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.layers.iter().map(LayerReport::cycles).sum()
    }

    /// Cycles spent in aggregation across layers (Figure 7/20(b)).
    pub fn aggregation_cycles(&self) -> Cycle {
        self.layers.iter().map(|l| l.aggregation.cycles).sum()
    }

    /// Cycles spent in combination across layers (Figure 7/20(b)).
    pub fn combination_cycles(&self) -> Cycle {
        self.layers.iter().map(|l| l.combination.cycles).sum()
    }

    /// Merged traffic statistics across phases and layers.
    pub fn total_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::new();
        for l in &self.layers {
            t.merge(&l.combination.traffic);
            t.merge(&l.aggregation.traffic);
        }
        t
    }

    /// Total DRAM bytes moved (Figure 18's metric).
    pub fn dram_bytes(&self) -> u64 {
        self.total_traffic().total_fetched()
    }

    /// Total MAC operations (must be engine-invariant for a workload).
    pub fn mac_ops(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.combination.mac_ops + l.aggregation.mac_ops)
            .sum()
    }

    /// Merged cache statistics (aggregation phases only, where the HDN
    /// cache operates — Figure 17's metric).
    pub fn aggregation_cache(&self) -> CacheStats {
        let mut c = CacheStats::default();
        for l in &self.layers {
            c.merge(&l.aggregation.cache);
        }
        c
    }

    /// Activity counts for the energy model (Figure 22), with the engine's
    /// total SRAM capacity supplied by the caller.
    ///
    /// For a multi-PE end-to-end run (`exec=e2e`, `pes > 1`) the per-phase
    /// [`PhasePeBusy`] breakdowns are folded into the fleet PE-cycle
    /// counters, so leakage charges every PE — busy *or idle* — for the
    /// full phase makespan rather than the single reference timeline.
    /// Single-PE and post-hoc runs leave those counters zero and the
    /// energy estimate is bit-identical to the pre-fleet behavior.
    pub fn activity(&self, sram_kb: f64) -> ActivityCounts {
        let mut a = ActivityCounts {
            sram_kb,
            ..ActivityCounts::default()
        };
        for l in &self.layers {
            for p in [&l.combination, &l.aggregation] {
                a.mac_ops += p.mac_ops;
                a.sram_reads_8b += p.sram_reads_8b;
                a.sram_writes_8b += p.sram_writes_8b;
                a.dram_bytes += p.traffic.total_fetched();
            }
        }
        // Three register-file touches per MAC (two operand reads, one
        // accumulator write), the usual vector-MAC bookkeeping.
        a.rf_accesses = 3 * a.mac_ops;
        a.cycles = self.total_cycles();
        if let Some(breakdown) = self.multi_pe_breakdown() {
            if breakdown.pes > 1 {
                for layer in &breakdown.layers {
                    for pe in [&layer.combination, &layer.aggregation] {
                        let busy: f64 = pe.per_pe_busy.iter().sum();
                        let fleet = pe.makespan * breakdown.pes as f64;
                        a.pe_busy_cycles += busy.round() as u64;
                        a.pe_idle_cycles += (fleet - busy).max(0.0).round() as u64;
                    }
                }
            }
        }
        a
    }

    /// The per-layer multi-PE breakdown of an end-to-end run: one
    /// [`PhasePeBusy`] per phase per layer, assembled from the phase
    /// reports. `None` when the run used the post-hoc execution model
    /// (no phase carries per-PE accounting).
    pub fn multi_pe_breakdown(&self) -> Option<MultiPeBreakdown> {
        let summary = self.multi_pe.as_ref()?;
        let layers: Option<Vec<LayerPeBusy>> = self
            .layers
            .iter()
            .map(|l| {
                Some(LayerPeBusy {
                    combination: l.combination.pe.clone()?,
                    aggregation: l.aggregation.pe.clone()?,
                })
            })
            .collect();
        Some(MultiPeBreakdown {
            scheduler: summary.scheduler,
            pes: summary.pes,
            layers: layers?,
        })
    }

    /// Per-cluster profiles concatenated across layers (multi-PE model).
    pub fn cluster_profiles(&self) -> Vec<ClusterProfile> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend(l.combination.cluster_profiles.iter().copied());
            out.extend(l.aggregation.cluster_profiles.iter().copied());
        }
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cycles ({} aggregation / {} combination), {} DRAM bytes, {} MACs",
            self.engine,
            self.total_cycles(),
            self.aggregation_cycles(),
            self.combination_cycles(),
            self.dram_bytes(),
            self.mac_ops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(kind: PhaseKind, cycles: Cycle, macs: u64) -> PhaseReport {
        PhaseReport {
            cycles,
            mac_ops: macs,
            ..PhaseReport::new(kind)
        }
    }

    fn report() -> RunReport {
        RunReport {
            engine: "test",
            multi_pe: None,
            exec: "post_hoc",
            layers: vec![
                LayerReport {
                    combination: phase(PhaseKind::Combination, 10, 100),
                    aggregation: phase(PhaseKind::Aggregation, 40, 200),
                },
                LayerReport {
                    combination: phase(PhaseKind::Combination, 5, 50),
                    aggregation: phase(PhaseKind::Aggregation, 20, 80),
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_layers_and_phases() {
        let r = report();
        assert_eq!(r.total_cycles(), 75);
        assert_eq!(r.aggregation_cycles(), 60);
        assert_eq!(r.combination_cycles(), 15);
        assert_eq!(r.mac_ops(), 430);
    }

    #[test]
    fn activity_derives_rf_from_macs() {
        let a = report().activity(538.0);
        assert_eq!(a.mac_ops, 430);
        assert_eq!(a.rf_accesses, 3 * 430);
        assert_eq!(a.cycles, 75);
        assert_eq!(a.sram_kb, 538.0);
    }

    #[test]
    fn display_contains_engine_name() {
        assert!(format!("{}", report()).contains("test"));
    }
}
