//! The GCNAX baseline (Li et al., HPCA 2021) — the state-of-the-art
//! SpDeGEMM GCN accelerator GROW compares against.
//!
//! GCNAX executes the same `A*(X*W)` order but with an *outer-product*
//! dataflow over 2D tiles (Figure 4 of the GROW paper): the sparse LHS is
//! pre-tiled into `Ti x Tk` CSC-compressed tiles; output is produced in
//! `Ti`-row strips held on-chip; for every non-zero column within a strip
//! the corresponding dense RHS row is fetched once and reused across the
//! strip (2D-tile locality). The model reproduces GCNAX's two
//! characteristic behaviors from Section IV:
//!
//! * each non-empty sparse tile is fetched at 64-byte granularity with its
//!   CSC column-pointer metadata, so nearly-empty aggregation tiles waste
//!   most of their DRAM transfer (Figures 5/6);
//! * on high-average-degree graphs (Reddit) the strip-level RHS reuse is
//!   substantial, which is why GCNAX beats GROW on Reddit's traffic
//!   (Section VII-A).

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::OnceLock;

use grow_sim::{
    Cycle, DramConfig, FaultPlan, ScratchArena, TrafficClass, ELEMENT_BYTES, INDEX_BYTES,
};
use grow_sparse::RowMajorSparse;

use crate::exec_model::ExecModel;
use crate::pipeline::{self, PhaseCtx};
use crate::plan::{self, PlanBuffer, ShardRows, ShardSpec};
use crate::{Accelerator, LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport};

/// Per-worker scratch of the strip walk, recycled through a
/// [`ScratchArena`] instead of reallocated per cluster.
#[derive(Debug, Default)]
struct GcnaxScratch {
    /// Non-zeros per `Tk`-wide tile of the current strip (zeroed as the
    /// fetch loop consumes it, so it is all-zero again at strip end).
    tile_nnz: Vec<u32>,
    /// Distinct-column stamps: `stamp[col] == s` when `col` was first seen
    /// in the strip stamped `s`. Stamps are drawn from `next_stamp` and
    /// never reused (see [`GcnaxScratch::strip_stamp`]), so the array
    /// survives cluster and layer boundaries without clearing.
    stamp: Vec<u32>,
    next_stamp: u32,
    /// Outstanding tile fetches of the depth-limited dependent chain.
    in_flight: VecDeque<Cycle>,
}

impl GcnaxScratch {
    /// Sizes the buffers for a phase over a `k_dim`-column LHS. Stamps
    /// stay valid across calls with the same `k_dim`; a dimension change
    /// (combination vs aggregation) re-zeroes the array.
    fn prepare(&mut self, n_tiles_k: usize, k_dim: usize) {
        self.tile_nnz.clear();
        self.tile_nnz.resize(n_tiles_k, 0);
        if self.stamp.len() != k_dim {
            self.stamp.clear();
            self.stamp.resize(k_dim, 0);
            self.next_stamp = 0;
        }
    }

    /// A fresh stamp for one strip, strictly greater than every stamp in
    /// the array (re-zeroing on the — astronomically rare — wraparound).
    fn strip_stamp(&mut self) -> u32 {
        if self.next_stamp == u32::MAX {
            self.stamp.fill(0);
            self.next_stamp = 0;
        }
        self.next_stamp += 1;
        self.next_stamp
    }
}

/// One strip of a [`GcnaxPlan`]: the pure outcome of counting a
/// `tile_rows`-row strip's non-zeros.
#[derive(Debug, Clone, Copy)]
struct StripPlan {
    /// Total non-zeros of the strip.
    nnz: u64,
    /// Distinct non-zero columns of the strip (RHS rows to fetch).
    distinct: u64,
    /// Number of non-empty tiles; their payload non-zero counts occupy
    /// the next `tiles` entries of the plan's flat tile stream.
    tiles: u32,
}

/// The plan-pass output of GCNAX's strip counting over a row range:
/// per-strip totals plus the flat stream of non-empty tile payloads, in
/// strip-then-tile order. A pure function of the LHS structure and tile
/// geometry, so row ranges cut at strip boundaries concatenate to the
/// single-pass plan — and the aggregation plan (over the layer-invariant
/// adjacency) is retained across layers.
#[derive(Debug, Default)]
struct GcnaxPlan {
    strips: Vec<StripPlan>,
    tiles: Vec<u32>,
}

impl PlanBuffer for GcnaxPlan {
    fn clear(&mut self) {
        self.strips.clear();
        self.tiles.clear();
    }
}

impl GcnaxPlan {
    /// Ordered merge of a shard's plan onto this one.
    fn absorb(&mut self, shard: &GcnaxPlan) {
        self.strips.extend_from_slice(&shard.strips);
        self.tiles.extend_from_slice(&shard.tiles);
    }
}

/// GCNAX configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcnaxConfig {
    /// Tile height `Ti` (output strip rows).
    pub tile_rows: usize,
    /// Tile width `Tk` (inner-dimension span of one sparse tile).
    pub tile_cols: usize,
    /// MAC lanes (matched to GROW for iso-throughput comparison,
    /// Section VI).
    pub mac_lanes: usize,
    /// Dense-operand buffer capacity in bytes; a weight matrix that fits is
    /// fetched once, otherwise dense rows are re-fetched per strip.
    pub dense_buffer_bytes: u64,
    /// Outstanding sparse-tile fetches. GCNAX's tile walk is
    /// address-dependent (the next tile's RHS row list is known only after
    /// its CSC metadata arrives) and double-buffered rather than
    /// runahead-scheduled, so its memory-level parallelism is bounded —
    /// the contrast GROW's multi-row runahead execution exploits
    /// (Sections V-D and VII-C).
    pub tile_fetch_depth: usize,
    /// Off-chip memory parameters.
    pub dram: DramConfig,
    /// Intra-cluster sharding of the strip-counting plan pass (the
    /// uniform `shard_rows=` override; boundaries snap to `tile_rows` so
    /// strips never straddle shards). Bit-identical at any setting.
    pub shard_rows: ShardRows,
    /// Multi-PE projection (Figure 24): PE count and cluster scheduler.
    pub multi_pe: crate::schedule::MultiPeConfig,
    /// Deterministic fault-injection plan (the uniform `fault=` override;
    /// off by default).
    pub fault: FaultPlan,
}

impl Default for GcnaxConfig {
    fn default() -> Self {
        GcnaxConfig {
            tile_rows: 128,
            tile_cols: 128,
            mac_lanes: 16,
            dense_buffer_bytes: 512 * 1024,
            // Two tile buffers (double buffering) — GCNAX prefetches the
            // next tile while computing the current one, nothing more.
            tile_fetch_depth: 2,
            dram: DramConfig::default(),
            shard_rows: ShardRows::Off,
            multi_pe: crate::schedule::MultiPeConfig::default(),
            fault: FaultPlan::OFF,
        }
    }
}

/// Counts strip/tile occupancy for `rows` (the pure plan pass): per
/// strip, the non-zero total, distinct columns, and each non-empty tile's
/// payload. `rows` must start on a strip boundary of the enclosing
/// cluster, which [`plan::shard_ranges`] guarantees via its `align`.
fn plan_strips(
    cfg: &GcnaxConfig,
    lhs: &RowMajorSparse<'_>,
    rows: Range<usize>,
    scratch: &mut GcnaxScratch,
    out: &mut GcnaxPlan,
) {
    let k_dim = lhs.cols();
    let n_tiles_k = k_dim.div_ceil(cfg.tile_cols);
    scratch.prepare(n_tiles_k, k_dim);
    // Tile-index division strength-reduced to a shift for the (default)
    // power-of-two tile width.
    let tile_shift = cfg
        .tile_cols
        .is_power_of_two()
        .then(|| cfg.tile_cols.trailing_zeros());

    let mut row = rows.start;
    while row < rows.end {
        let strip_end = (row + cfg.tile_rows).min(rows.end);
        let strip_stamp = scratch.strip_stamp();
        let tile_nnz = &mut scratch.tile_nnz;
        let stamp = &mut scratch.stamp;
        let mut strip_nnz = 0u64;
        let mut distinct = 0u64;

        match *lhs {
            RowMajorSparse::Dense { cols, .. } => {
                // Fast path: every tile is full, every column distinct.
                strip_nnz = ((strip_end - row) * cols) as u64;
                distinct = cols as u64;
                for (t, slot) in tile_nnz.iter_mut().enumerate() {
                    let w = cfg.tile_cols.min(cols - t * cfg.tile_cols);
                    *slot = ((strip_end - row) * w) as u32;
                }
            }
            RowMajorSparse::Pattern(p) => {
                for slice in p.row_slices(row..strip_end) {
                    for &c in slice {
                        let t = match tile_shift {
                            Some(s) => c as usize >> s,
                            None => c as usize / cfg.tile_cols,
                        };
                        tile_nnz[t] += 1;
                        strip_nnz += 1;
                        if stamp[c as usize] != strip_stamp {
                            stamp[c as usize] = strip_stamp;
                            distinct += 1;
                        }
                    }
                }
            }
        }

        // Harvest the non-empty tiles in tile order (the order the fetch
        // chain walks them), re-zeroing the counters for the next strip.
        let before = out.tiles.len();
        for slot in scratch.tile_nnz.iter_mut() {
            if *slot > 0 {
                out.tiles.push(*slot);
                *slot = 0;
            }
        }
        out.strips.push(StripPlan {
            nnz: strip_nnz,
            distinct,
            tiles: (out.tiles.len() - before) as u32,
        });
        row = strip_end;
    }
}

/// The GCNAX accelerator timing model.
#[derive(Debug, Clone, Default)]
pub struct GcnaxEngine {
    config: GcnaxConfig,
}

/// Bytes of CSC metadata fetched with each sparse tile: one 16-bit
/// within-tile column pointer per tile column (plus one terminator).
fn tile_metadata_bytes(tile_cols: usize) -> u64 {
    2 * (tile_cols as u64 + 1)
}

impl GcnaxEngine {
    /// Creates an engine with an explicit configuration.
    pub fn new(config: GcnaxConfig) -> Self {
        GcnaxEngine { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &GcnaxConfig {
        &self.config
    }

    /// Simulates one SpDeGEMM phase `C[n x f] = LHS[n x k] * RHS[k x f]`.
    ///
    /// A resident RHS (small enough to pin on-chip for the whole phase —
    /// the weight matrix in combination) is preloaded once in a prologue;
    /// otherwise each strip fetches the RHS rows of its distinct non-zero
    /// columns. The strip walk runs cluster by cluster through the shared
    /// harness, in parallel across clusters.
    #[allow(clippy::too_many_arguments)]
    fn run_phase(
        &self,
        model: &ExecModel,
        kind: PhaseKind,
        lhs: &RowMajorSparse<'_>,
        f: usize,
        clusters: &[Range<usize>],
        scratch: &ScratchArena<GcnaxScratch>,
        plan_pool: &ScratchArena<GcnaxPlan>,
        spec: ShardSpec,
        store: Option<&[OnceLock<GcnaxPlan>]>,
    ) -> PhaseReport {
        let cfg = &self.config;
        let mut phase = PhaseReport::new(kind);
        let rhs_bytes = lhs.cols() as u64 * f as u64 * ELEMENT_BYTES;
        let rhs_resident = rhs_bytes <= cfg.dense_buffer_bytes;

        if rhs_resident {
            // One-time weight preload (contiguous).
            let mut pre = PhaseCtx::new(kind, cfg.dram, cfg.mac_lanes);
            pre.now = pre.dram.read_stream(0, rhs_bytes, TrafficClass::Weights);
            pre.dram.round_burst(rhs_bytes, TrafficClass::Weights);
            pre.report.sram_writes_8b += rhs_bytes / 8;
            phase.absorb_sequential(pre.finish());
        }

        let clustered =
            pipeline::run_clusters_scratched(model, kind, clusters, scratch, |s, ci, cluster| {
                let cell = store.map(|st| &st[ci]);
                self.run_strips(
                    kind,
                    lhs,
                    f,
                    cluster,
                    rhs_resident,
                    s,
                    spec,
                    plan_pool,
                    scratch,
                    cell,
                )
            });
        phase.absorb_sequential(clustered);
        phase
    }

    /// Walks one cluster's output strips in an isolated context: the pure
    /// strip-counting plan (sharded per [`ShardSpec`], produced ahead of
    /// the consumer) replays in row order through the cycle machinery.
    /// When `cell` holds a plan retained from an earlier layer, the count
    /// pass is skipped entirely and the cached plan replays.
    #[allow(clippy::too_many_arguments)]
    fn run_strips(
        &self,
        kind: PhaseKind,
        lhs: &RowMajorSparse<'_>,
        f: usize,
        rows: Range<usize>,
        rhs_resident: bool,
        scratch: &mut GcnaxScratch,
        spec: ShardSpec,
        plan_pool: &ScratchArena<GcnaxPlan>,
        scratch_pool: &ScratchArena<GcnaxScratch>,
        cell: Option<&OnceLock<GcnaxPlan>>,
    ) -> PhaseReport {
        let cfg = &self.config;
        let mut ctx = PhaseCtx::new(kind, cfg.dram, cfg.mac_lanes);

        // Double buffering: strip s+1's fetches start once strip s's
        // fetches have drained into the compute buffer; the FIFO channel
        // serializes the transfers themselves. Carried across shards —
        // replay is a single in-order walk regardless of sharding.
        let mut issue_at: Cycle = 0;
        let in_flight = &mut scratch.in_flight;

        if let Some(plan) = cell.and_then(|c| c.get()) {
            self.replay_strips(
                kind,
                f,
                rows,
                rhs_resident,
                plan,
                &mut issue_at,
                in_flight,
                &mut ctx,
            );
            return ctx.finish_cluster();
        }

        // Shard boundaries snap to the strip grain so strips never
        // straddle shards; concatenated shard plans then equal the
        // unsharded plan exactly.
        let pattern = match *lhs {
            RowMajorSparse::Pattern(p) => Some(p),
            RowMajorSparse::Dense { .. } => None,
        };
        let ranges = plan::shard_ranges(pattern, rows, spec, cfg.tile_rows);
        let mut merged = cell.map(|_| GcnaxPlan::default());
        plan::plan_replay(
            plan_pool,
            ranges,
            |range, buf| {
                let mut s = scratch_pool.checkout();
                plan_strips(cfg, lhs, range, &mut s, buf);
            },
            |range, buf| {
                self.replay_strips(
                    kind,
                    f,
                    range,
                    rhs_resident,
                    buf,
                    &mut issue_at,
                    in_flight,
                    &mut ctx,
                );
                if let Some(m) = merged.as_mut() {
                    m.absorb(buf);
                }
            },
        );
        if let (Some(cell), Some(merged)) = (cell, merged) {
            cell.set(merged).ok();
        }

        ctx.finish_cluster()
    }

    /// Replays a strip plan over `rows` through the cycle-accurate fetch
    /// chain. Must be called in row order within a cluster: `issue_at`
    /// carries the double-buffering gate across shards.
    #[allow(clippy::too_many_arguments)]
    fn replay_strips(
        &self,
        kind: PhaseKind,
        f: usize,
        rows: Range<usize>,
        rhs_resident: bool,
        buf: &GcnaxPlan,
        issue_at: &mut Cycle,
        in_flight: &mut VecDeque<Cycle>,
        ctx: &mut PhaseCtx,
    ) {
        let cfg = &self.config;
        let row_bytes = f as u64 * ELEMENT_BYTES;

        // Fetch each strip's sparse tiles (CSC, 64 B granularity each —
        // the Figure 10(b) inefficiency) and their RHS rows. Tile fetches
        // form a depth-limited dependent chain: tile `i` cannot issue
        // before tile `i - depth` has returned (its CSC metadata steers
        // the walk), and a tile's RHS row fetches issue only once that
        // tile's metadata is on-chip. This bounded MLP is the structural
        // disadvantage against GROW's runahead.
        let meta = tile_metadata_bytes(cfg.tile_cols);
        let class = match kind {
            PhaseKind::Combination => TrafficClass::Weights,
            PhaseKind::Aggregation => TrafficClass::RhsRows,
        };
        let depth = cfg.tile_fetch_depth.max(1);

        let mut tile_cursor = 0usize;
        let mut row = rows.start;
        for sp in &buf.strips {
            let strip_end = (row + cfg.tile_rows).min(rows.end);
            let tiles = &buf.tiles[tile_cursor..tile_cursor + sp.tiles as usize];
            tile_cursor += sp.tiles as usize;

            in_flight.clear();
            let mut fetch_done = *issue_at;
            let avg_rows_per_tile = if sp.distinct > 0 {
                sp.distinct as f64 / (sp.tiles as usize).max(1) as f64
            } else {
                0.0
            };
            let mut rows_remaining = sp.distinct;
            for &slot in tiles {
                let gate = if in_flight.len() >= depth {
                    in_flight.pop_front().expect("non-empty at capacity")
                } else {
                    *issue_at
                };
                let payload = slot as u64 * (ELEMENT_BYTES + INDEX_BYTES);
                let tile_done =
                    ctx.dram
                        .read_with_overhead(gate, payload, meta, TrafficClass::LhsSparse);
                ctx.report.sram_writes_8b += (payload + meta).div_ceil(8);
                let mut done = tile_done;
                if !rhs_resident && rows_remaining > 0 {
                    // This tile's share of the strip's distinct RHS rows,
                    // issued once its column list is known.
                    let rows = (avg_rows_per_tile.round() as u64)
                        .min(rows_remaining)
                        .max(1);
                    rows_remaining -= rows;
                    done = ctx.dram.read_many(tile_done, rows, row_bytes, class);
                    ctx.report.sram_writes_8b += rows * f as u64;
                }
                in_flight.push_back(done);
                fetch_done = fetch_done.max(done);
            }
            if !rhs_resident && rows_remaining > 0 {
                fetch_done = fetch_done.max(ctx.dram.read_many(
                    fetch_done,
                    rows_remaining,
                    row_bytes,
                    class,
                ));
                ctx.report.sram_writes_8b += rows_remaining * f as u64;
            }

            // Compute the strip (outer product: every non-zero multiplies
            // an f-wide RHS row), double-buffered against the next strip's
            // fetches.
            let compute_done = ctx.mac.scalar_vector_bulk(fetch_done, f, sp.nnz);
            ctx.report.sram_reads_8b += sp.nnz * (1 + f as u64);
            ctx.report.sram_writes_8b += sp.nnz * f as u64;

            // Write the finished output strip back (contiguous).
            let out_bytes = ((strip_end - row) * f) as u64 * ELEMENT_BYTES;
            ctx.dram
                .write(compute_done, out_bytes, TrafficClass::Output);
            ctx.report.sram_reads_8b += out_bytes / 8;

            *issue_at = fetch_done.max(*issue_at);
            row = strip_end;
        }
    }
}

impl Accelerator for GcnaxEngine {
    fn name(&self) -> &'static str {
        "GCNAX"
    }

    fn run(&self, workload: &PreparedWorkload) -> RunReport {
        let adjacency = RowMajorSparse::Pattern(&workload.adjacency);
        // One scratch pool per run: strip counters and plan buffers are
        // recycled across clusters, phases, and layers.
        let scratch: ScratchArena<GcnaxScratch> = ScratchArena::new();
        let plan_pool: ScratchArena<GcnaxPlan> = ScratchArena::new();
        let spec = self.config.shard_rows.spec(workload);
        // The aggregation plan is a pure function of the layer-invariant
        // adjacency: count it once at the first layer, replay it at later
        // ones (small workloads only; see `PLAN_REUSE_MAX_OPS`). The
        // combination LHS changes per layer, so no retention there.
        // Inside a serving session pool the slots come from the cross-job
        // plan cache instead, keyed by the tile grain (the plan depends
        // on it), so same-tiling jobs skip the count pass entirely.
        let plan_gate =
            workload.adjacency.nnz() + 2 * workload.adjacency.rows() <= plan::PLAN_REUSE_MAX_OPS;
        // Fault-injected runs stay off the shared cache (see the grow
        // engine): injection counts must not depend on fleet warm state.
        let shared_plans = match &workload.plan_cache {
            Some(scope) if plan_gate && self.config.fault.is_off() => {
                Some(scope.slots::<GcnaxPlan>(
                    &format!("gcnax:{}x{}", self.config.tile_rows, self.config.tile_cols),
                    workload.clusters.len(),
                ))
            }
            _ => None,
        };
        let local_plans: Option<Vec<OnceLock<GcnaxPlan>>> =
            (shared_plans.is_none() && plan_gate && workload.layers.len() > 1).then(|| {
                (0..workload.clusters.len())
                    .map(|_| OnceLock::new())
                    .collect()
            });
        let agg_store: Option<&[OnceLock<GcnaxPlan>]> = shared_plans
            .as_deref()
            .map(Vec::as_slice)
            .or(local_plans.as_deref());
        let model = ExecModel::with_dram(self.config.multi_pe, self.config.dram);
        let mut report = pipeline::run_layers(self.name(), workload, self.config.fault, |layer| {
            LayerReport {
                combination: self.run_phase(
                    &model,
                    PhaseKind::Combination,
                    &layer.x.view(),
                    layer.f_out,
                    &workload.clusters,
                    &scratch,
                    &plan_pool,
                    spec,
                    None,
                ),
                aggregation: self.run_phase(
                    &model,
                    PhaseKind::Aggregation,
                    &adjacency,
                    layer.f_out,
                    &workload.clusters,
                    &scratch,
                    &plan_pool,
                    spec,
                    agg_store,
                ),
            }
        });
        model.finalize(&mut report);
        report
    }

    fn sram_kb(&self) -> f64 {
        // GCNAX's on-chip storage (input tile buffers + dense buffer +
        // output strip buffer) is provisioned comparably to GROW
        // (Section VI: "provisioned with similar on-chip SRAM capacity").
        (self.config.dense_buffer_bytes as f64
            + (self.config.tile_rows * self.config.tile_cols) as f64 * 12.0
            + (self.config.tile_rows * 64) as f64 * ELEMENT_BYTES as f64)
            / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, PartitionStrategy, PreparedWorkload};
    use grow_model::DatasetKey;

    fn prepared(nodes: usize) -> PreparedWorkload {
        let w = DatasetKey::Pubmed.spec().scaled_to(nodes).instantiate(3);
        prepare(&w, PartitionStrategy::None, 4096)
    }

    #[test]
    fn mac_ops_match_grow_invariant() {
        // Section VI: iso-computation comparison — GCNAX performs the same
        // MACs as GROW for the same workload.
        let p = prepared(600);
        let gcnax = GcnaxEngine::default().run(&p);
        let grow = crate::GrowEngine::default().run(&p);
        assert_eq!(gcnax.mac_ops(), grow.mac_ops());
    }

    #[test]
    fn sparse_tiles_waste_bandwidth() {
        // Figure 6: on a sparse adjacency, effective bandwidth utilization
        // of the A fetches is low (metadata + granularity rounding). Scale
        // matters: a node-scaled graph with preserved degree is *denser*
        // than the paper's, so force a paper-like tile density (a few nnz
        // per 128x128 tile) with a low-degree spec.
        let mut spec = DatasetKey::Pubmed.spec().scaled_to(6000);
        spec.avg_degree = 2.0;
        let w = spec.instantiate(3);
        let p = prepare(&w, PartitionStrategy::None, 4096);
        let r = GcnaxEngine::default().run(&p);
        let agg = &r.layers[0].aggregation.traffic;
        let util = agg.utilization(TrafficClass::LhsSparse).unwrap();
        assert!(util < 0.45, "A-fetch utilization {util} should be poor");
    }

    #[test]
    fn combination_utilization_is_higher_than_aggregation() {
        // Figure 6: X tiles are dense (black bars high), A tiles are not.
        let p = prepared(2000);
        let r = GcnaxEngine::default().run(&p);
        let comb = r.layers[1]
            .combination
            .traffic
            .utilization(TrafficClass::LhsSparse)
            .unwrap();
        let agg = r.layers[1]
            .aggregation
            .traffic
            .utilization(TrafficClass::LhsSparse)
            .unwrap();
        assert!(comb > agg, "combination {comb} vs aggregation {agg}");
    }

    #[test]
    fn weights_fetched_once_when_resident() {
        let p = prepared(500);
        let r = GcnaxEngine::default().run(&p);
        // Pubmed layer 1: W is 500x16x8 = 64 KB < 512 KB buffer.
        let useful = r.layers[0]
            .combination
            .traffic
            .useful_bytes(TrafficClass::Weights);
        assert_eq!(useful, 500 * 16 * 8);
    }

    #[test]
    fn strip_reuse_bounds_rhs_traffic() {
        // RHS fetches per strip are bounded by distinct columns, which is
        // at most the strip's nnz and at most k_dim. Shrink the dense
        // buffer so XW is not resident (at full scale it never is).
        let p = prepared(1000);
        let engine = GcnaxEngine::new(GcnaxConfig {
            dense_buffer_bytes: 16 * 1024,
            ..GcnaxConfig::default()
        });
        let r = engine.run(&p);
        let agg = &r.layers[0].aggregation;
        let rhs_rows_fetched = agg.traffic.requests(TrafficClass::RhsRows);
        let nnz = p.adjacency.nnz() as u64;
        assert!(rhs_rows_fetched <= nnz);
        assert!(rhs_rows_fetched > 0);
    }

    #[test]
    fn small_rhs_stays_resident() {
        // For graphs whose whole XW fits in the dense buffer (the small
        // Table I datasets), GCNAX holds it on-chip: no per-strip RHS row
        // fetches at all.
        let p = prepared(1000);
        let r = GcnaxEngine::default().run(&p);
        // Pubmed layer 1: XW is 1000 x 16 x 8 B = 128 KB < 512 KB.
        assert_eq!(
            r.layers[0]
                .aggregation
                .traffic
                .requests(TrafficClass::RhsRows),
            0
        );
    }

    #[test]
    fn deterministic() {
        let p = prepared(400);
        let e = GcnaxEngine::default();
        assert_eq!(e.run(&p), e.run(&p));
    }

    #[test]
    fn tile_fetch_depth_ablation() {
        // DESIGN.md §2.6: bounded tile-fetch parallelism is GCNAX's
        // structural disadvantage. More outstanding fetches must help
        // monotonically (and not change traffic, which is depth-invariant).
        let mut spec = DatasetKey::Pubmed.spec().scaled_to(6000);
        spec.avg_degree = 4.0;
        let w = spec.instantiate(3);
        let p = prepare(&w, PartitionStrategy::None, 4096);
        let run = |depth: usize| {
            GcnaxEngine::new(GcnaxConfig {
                tile_fetch_depth: depth,
                ..GcnaxConfig::default()
            })
            .run(&p)
        };
        let d1 = run(1);
        let d2 = run(2);
        let d8 = run(8);
        assert!(
            d1.total_cycles() >= d2.total_cycles(),
            "{} < {}",
            d1.total_cycles(),
            d2.total_cycles()
        );
        assert!(
            d2.total_cycles() >= d8.total_cycles(),
            "{} < {}",
            d2.total_cycles(),
            d8.total_cycles()
        );
        assert!(
            d1.total_cycles() > d8.total_cycles(),
            "depth must matter on sparse tiles"
        );
        assert_eq!(
            d1.dram_bytes(),
            d8.dram_bytes(),
            "traffic is depth-invariant"
        );
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-cluster range list is intentional
    fn dense_fast_path_matches_pattern_path() {
        // A fully dense X simulated via the Dense view must produce the
        // same traffic/compute as the equivalent explicit pattern.
        let cfg = GcnaxConfig::default();
        let engine = GcnaxEngine::new(cfg);
        let dense_view = RowMajorSparse::Dense {
            rows: 300,
            cols: 70,
        };
        let pattern = grow_sparse::CsrPattern::dense(300, 70);
        let pattern_view = RowMajorSparse::Pattern(&pattern);
        let arena = ScratchArena::new();
        let plans = ScratchArena::new();
        let model = ExecModel::with_dram(cfg.multi_pe, cfg.dram);
        let a = engine.run_phase(
            &model,
            PhaseKind::Combination,
            &dense_view,
            16,
            &[0..300],
            &arena,
            &plans,
            ShardSpec::OFF,
            None,
        );
        let b = engine.run_phase(
            &model,
            PhaseKind::Combination,
            &pattern_view,
            16,
            &[0..300],
            &arena,
            &plans,
            ShardSpec::OFF,
            None,
        );
        assert_eq!(a.mac_ops, b.mac_ops);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn sharded_strips_are_bit_identical_to_unsharded() {
        // The shard_rows contract ported to GCNAX: strip counting over row
        // ranges cut at the tile_rows grain concatenates to the unsharded
        // plan, so any threshold (aligned or not, fixed or auto) and any
        // execution mode reproduce the baseline report exactly.
        let p = prepared(2000);
        let base = GcnaxEngine::default().run(&p);
        for shard in [
            ShardRows::Fixed(64),
            ShardRows::Fixed(257),
            ShardRows::Fixed(333),
            ShardRows::Fixed(1999),
            ShardRows::Fixed(4096),
            ShardRows::Auto,
        ] {
            let e = GcnaxEngine::new(GcnaxConfig {
                shard_rows: shard,
                ..GcnaxConfig::default()
            });
            let sharded = grow_sim::exec::with_workers(4, || e.run(&p));
            assert_eq!(base, sharded, "{shard:?} parallel");
            let serial = grow_sim::exec::with_mode(grow_sim::ExecMode::Serial, || e.run(&p));
            assert_eq!(base, serial, "{shard:?} serial");
        }
    }
}
