//! Reference kernels: dense GEMM, row-wise (Gustavson) SpMM, and the two
//! GCN execution orders.
//!
//! These kernels are the functional ground truth against which the
//! cycle-level accelerator models are validated: every engine's
//! value-computation mode must reproduce [`spmm`] bit-for-bit up to
//! accumulation-order rounding.

use crate::{CsrMatrix, DenseMatrix, SparseError};

/// Dense GEMM: `C = A * B`.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.cols() != b.rows()`.
///
/// ```
/// use grow_sparse::{DenseMatrix, ops};
/// # fn main() -> Result<(), grow_sparse::SparseError> {
/// let a = DenseMatrix::from_row_major(1, 2, vec![1.0, 2.0])?;
/// let b = DenseMatrix::from_row_major(2, 1, vec![3.0, 4.0])?;
/// assert_eq!(ops::gemm(&a, &b)?.get(0, 0), 11.0);
/// # Ok(())
/// # }
/// ```
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
    if a.cols() != b.rows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "gemm",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_row = a.row(i);
        // i-k-j loop order: accumulate scalar * row, the same row-wise
        // (Gustavson) primitive the GROW MAC array executes.
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let c_row = c.row_mut(i);
            for (j, &bkj) in b_row.iter().enumerate() {
                c_row[j] += aik * bkj;
            }
        }
    }
    Ok(c)
}

/// Sparse-dense GEMM via row-wise product (Gustavson's algorithm):
/// `C = A * B` where `A` is CSR and `B` dense.
///
/// This is exactly the dataflow of Figure 9(b) in the paper: for every
/// non-zero `a[i][k]`, the scalar multiplies row `k` of `B` and accumulates
/// into row `i` of `C`.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn spmm(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
    if a.cols() != b.rows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "spmm",
        });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (k, aik) in a.row_entries(i) {
            let b_row = b.row(k as usize);
            let c_row = c.row_mut(i);
            for (j, &bkj) in b_row.iter().enumerate() {
                c_row[j] += aik * bkj;
            }
        }
    }
    Ok(c)
}

/// Sparse-dense GEMM via outer product: `C = A * B` where `A` is consumed
/// column-major (CSC), the dataflow of GCNAX (Figure 9(a)).
///
/// Produces the same result as [`spmm`] up to floating-point accumulation
/// order; used by tests to check that the two dataflows are numerically
/// interchangeable.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn spmm_outer(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
    if a.cols() != b.rows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "spmm_outer",
        });
    }
    let csc = a.to_csc();
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for k in 0..csc.cols() {
        let b_row = b.row(k).to_vec();
        for (i, aik) in csc.col_entries(k) {
            let c_row = c.row_mut(i as usize);
            for (j, &bkj) in b_row.iter().enumerate() {
                c_row[j] += aik * bkj;
            }
        }
    }
    Ok(c)
}

/// The GCN layer computed in the `A * (X * W)` order (the order GROW,
/// AWB-GCN, and GCNAX all adopt; Section II-B of the paper).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] on incompatible operand shapes.
pub fn gcn_layer_a_xw(
    a: &CsrMatrix,
    x: &CsrMatrix,
    w: &DenseMatrix,
) -> Result<DenseMatrix, SparseError> {
    let xw = spmm(x, w)?;
    spmm(a, &xw)
}

/// The GCN layer computed in the `(A * X) * W` order (HyGCN's order).
///
/// Produces the same values as [`gcn_layer_a_xw`] but with a different (and
/// usually far larger) number of MAC operations — the effect quantified in
/// Figure 2 of the paper.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] on incompatible operand shapes.
pub fn gcn_layer_ax_w(
    a: &CsrMatrix,
    x: &CsrMatrix,
    w: &DenseMatrix,
) -> Result<DenseMatrix, SparseError> {
    let ax = spmm(a, &x.to_dense())?;
    gemm(&ax, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small_a() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.extend([(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0), (2, 0, 0.5)]);
        coo.to_csr()
    }

    fn small_b() -> DenseMatrix {
        DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64)
    }

    #[test]
    fn gemm_matches_hand_computation() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_row_major(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_rejects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            gemm(&a, &b),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a = small_a();
        let b = small_b();
        let sparse = spmm(&a, &b).unwrap();
        let dense = gemm(&a.to_dense(), &b).unwrap();
        assert!(sparse.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn spmm_outer_matches_row_wise() {
        let a = small_a();
        let b = small_b();
        let row_wise = spmm(&a, &b).unwrap();
        let outer = spmm_outer(&a, &b).unwrap();
        assert!(row_wise.approx_eq(&outer, 1e-12));
    }

    #[test]
    fn spmm_rejects_shape_mismatch() {
        let a = small_a();
        let b = DenseMatrix::zeros(4, 2);
        assert!(spmm(&a, &b).is_err());
    }

    #[test]
    fn execution_orders_agree_numerically() {
        // Section II-B: (A x X) x W and A x (X x W) compute the same result;
        // only the MAC count differs.
        let a = small_a();
        let mut x_coo = CooMatrix::new(3, 4);
        x_coo.extend([(0, 0, 1.0), (1, 3, 2.0), (2, 1, -0.5), (2, 2, 3.0)]);
        let x = x_coo.to_csr();
        let w = DenseMatrix::from_fn(4, 2, |r, c| (r as f64) - (c as f64));
        let order_a = gcn_layer_a_xw(&a, &x, &w).unwrap();
        let order_b = gcn_layer_ax_w(&a, &x, &w).unwrap();
        assert!(order_a.approx_eq(&order_b, 1e-12));
    }

    #[test]
    fn spmm_with_identity_is_identity_map() {
        let a = small_a();
        let c = spmm(&a, &DenseMatrix::identity(3)).unwrap();
        assert!(c.approx_eq(&a.to_dense(), 0.0));
    }

    #[test]
    fn empty_operands_produce_zero_output() {
        let a = CsrMatrix::empty(2, 3);
        let b = DenseMatrix::zeros(3, 4);
        let c = spmm(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.shape(), (2, 4));
    }
}
