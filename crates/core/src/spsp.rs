//! Shared model of the row-wise-product sparse-*sparse* GEMM accelerators
//! (MatRaptor and GAMMA, compared against GROW in Section VII-H).
//!
//! Both use Gustavson's algorithm like GROW, but as generic sparse-sparse
//! engines they differ in exactly the three ways the paper identifies:
//!
//! 1. the RHS matrix is CSR-compressed, adding index metadata to every RHS
//!    row fetch ("additional indexing overheads as well as more memory
//!    traffic to fetch metadata associated with CSR");
//! 2. partial-sum merging hardware occupies the pipeline for every
//!    contribution ("a complicated and costly partial-sum merging process,
//!    which is entirely redundant for SpDeGEMM");
//! 3. caching: MatRaptor has none; GAMMA has a demand-filled LRU
//!    fiber cache "not optimized for the power-law distribution of graphs"
//!    (flushed at cluster boundaries, like every other per-cluster state).
//!
//! Like the other engines, the row walk runs cluster by cluster through
//! the shared [`pipeline`](crate::pipeline) harness, in parallel across
//! clusters.

use std::ops::Range;

use grow_sim::{DramConfig, LruRowCache, ScratchArena, TrafficClass, INDEX_BYTES};
use grow_sparse::RowMajorSparse;

use crate::exec_model::ExecModel;
use crate::pipeline::{self, PhaseCtx};
use crate::{LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport};

/// Per-worker scratch of the sparse-sparse cluster path: the fiber cache,
/// recycled through a [`ScratchArena`] and epoch-reset at every cluster
/// boundary (the flush the module docs describe) instead of reallocated.
#[derive(Debug, Default)]
struct SpSpScratch {
    cache: LruRowCache,
}

/// Bytes per element of a CSR-compressed row: value + column index.
const CSR_ELEM_BYTES: u64 = 8 + INDEX_BYTES;

/// Parameters of a row-wise sparse-sparse engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SpSpParams {
    pub name: &'static str,
    pub mac_lanes: usize,
    pub dram: DramConfig,
    /// Fiber-cache capacity in bytes (0 = no cache, i.e. MatRaptor).
    pub fiber_cache_bytes: u64,
    /// Merge occupancy per scalar x vector contribution, as a multiple of
    /// the MAC occupancy (MatRaptor's sorting queues ~1.0; GAMMA's
    /// high-radix pipelined merger ~0.5).
    pub merge_factor: f64,
    /// Total on-chip SRAM in KB (for energy accounting).
    pub sram_kb: f64,
    /// Multi-PE projection (Figure 24): PE count and cluster scheduler.
    pub multi_pe: crate::schedule::MultiPeConfig,
}

pub(crate) fn run_spsp(params: &SpSpParams, workload: &PreparedWorkload) -> RunReport {
    let adjacency = RowMajorSparse::Pattern(&workload.adjacency);
    // One scratch pool per run: fiber caches are epoch-reset between
    // clusters and layers, never reallocated.
    let scratch: ScratchArena<SpSpScratch> = ScratchArena::new();
    let model = ExecModel::new(params.multi_pe, params.dram.bytes_per_cycle);
    let mut report = pipeline::run_layers(params.name, workload, |layer| LayerReport {
        combination: run_phase(
            params,
            &model,
            PhaseKind::Combination,
            &layer.x.view(),
            layer.f_out,
            &workload.clusters,
            &scratch,
        ),
        aggregation: run_phase(
            params,
            &model,
            PhaseKind::Aggregation,
            &adjacency,
            layer.f_out,
            &workload.clusters,
            &scratch,
        ),
    });
    model.finalize(&mut report);
    report
}

/// One SpDeGEMM phase executed as if both operands were sparse.
fn run_phase(
    params: &SpSpParams,
    model: &ExecModel,
    kind: PhaseKind,
    lhs: &RowMajorSparse<'_>,
    f: usize,
    clusters: &[Range<usize>],
    scratch: &ScratchArena<SpSpScratch>,
) -> PhaseReport {
    pipeline::run_clusters_scratched(model, kind, clusters, scratch, |s, _, cluster| {
        run_rows(params, kind, lhs, f, cluster, s)
    })
}

/// Simulates one cluster's rows in an isolated context.
fn run_rows(
    params: &SpSpParams,
    kind: PhaseKind,
    lhs: &RowMajorSparse<'_>,
    f: usize,
    rows: Range<usize>,
    scratch: &mut SpSpScratch,
) -> PhaseReport {
    let mut ctx = PhaseCtx::new(kind, params.dram, params.mac_lanes);

    // The RHS (dense in reality) is stored and fetched as CSR by these
    // engines: f elements of 12 bytes per row.
    let rhs_row_bytes = f as u64 * CSR_ELEM_BYTES;
    let cache_rows = (params.fiber_cache_bytes / rhs_row_bytes) as usize;
    let cache = &mut scratch.cache;
    if cache_rows > 0 {
        // Cluster-boundary flush of the recycled fiber cache; the
        // cacheless (MatRaptor) path never touches it.
        cache.reset(cache_rows, lhs.cols());
    }
    let merge_cycles =
        ((f as f64 * params.merge_factor).ceil() as u64).div_ceil(params.mac_lanes as u64);

    let rhs_class = match kind {
        PhaseKind::Combination => TrafficClass::Weights,
        PhaseKind::Aggregation => TrafficClass::RhsRows,
    };

    let row_count = rows.len() as u64;
    let mut lhs_burst = 0u64;
    match *lhs {
        RowMajorSparse::Dense { cols, .. } => {
            // Dense LHS rows touch RHS rows 0..cols sequentially. Under LRU
            // a cyclic sequential scan either fits entirely (all hits after
            // the first row) or thrashes (all misses) — handled in bulk.
            let fits = cache_rows >= cols;
            for (i, _row) in rows.clone().enumerate() {
                let nnz = cols as u64;
                lhs_burst += nnz * CSR_ELEM_BYTES + INDEX_BYTES;
                let (hits, misses) = if cache_rows == 0 || !fits || i == 0 {
                    (0, nnz)
                } else {
                    (nnz, 0)
                };
                record_row(
                    &mut ctx,
                    rhs_class,
                    f,
                    rhs_row_bytes,
                    merge_cycles,
                    hits,
                    misses,
                );
            }
            if row_count > 0 {
                if cache_rows > 0 && fits {
                    ctx.report.cache.hits += (row_count - 1) * cols as u64;
                    ctx.report.cache.misses += cols as u64;
                } else {
                    ctx.report.cache.misses += row_count * cols as u64;
                }
            }
        }
        RowMajorSparse::Pattern(p) if cache_rows == 0 => {
            // No fiber cache (MatRaptor): every non-zero is a miss and
            // nothing is probed, so the per-nonzero walk collapses to the
            // per-row CSR lengths — bit-identical counters at a fraction
            // of the work.
            for slice in p.row_slices(rows.clone()) {
                let nnz = slice.len() as u64;
                lhs_burst += nnz * CSR_ELEM_BYTES + INDEX_BYTES;
                record_row(&mut ctx, rhs_class, f, rhs_row_bytes, merge_cycles, 0, nnz);
            }
        }
        RowMajorSparse::Pattern(p) => {
            for slice in p.row_slices(rows.clone()) {
                let mut hits = 0u64;
                let mut misses = 0u64;
                for &c in slice {
                    if cache.probe(c) {
                        hits += 1;
                    } else {
                        cache.insert(c);
                        misses += 1;
                    }
                }
                lhs_burst += slice.len() as u64 * CSR_ELEM_BYTES + INDEX_BYTES;
                record_row(
                    &mut ctx,
                    rhs_class,
                    f,
                    rhs_row_bytes,
                    merge_cycles,
                    hits,
                    misses,
                );
            }
            ctx.report.cache.merge(cache.stats());
        }
    }
    // The LHS CSR stream (C2SR in MatRaptor's terms) is contiguous.
    ctx.dram.read_stream(0, lhs_burst, TrafficClass::LhsSparse);
    ctx.dram.round_burst(lhs_burst, TrafficClass::LhsSparse);
    ctx.report.sram_reads_8b += lhs_burst.div_ceil(8);
    ctx.report.sram_writes_8b += lhs_burst.div_ceil(8);

    // Output written in compressed form (12 B/element) — these engines
    // produce sparse outputs even when the result is dense.
    let out_bytes = row_count * f as u64 * CSR_ELEM_BYTES;
    ctx.dram
        .write(ctx.mac.busy_until(), out_bytes, TrafficClass::Output);
    ctx.report.sram_reads_8b += out_bytes.div_ceil(8);

    let mut report = ctx.finish_cluster();
    report.cycles += params.dram.latency_cycles;
    report
}

/// Accounts one LHS row's worth of RHS fetches, MACs, and merge occupancy.
fn record_row(
    ctx: &mut PhaseCtx,
    rhs_class: TrafficClass,
    f: usize,
    rhs_row_bytes: u64,
    merge_cycles: u64,
    hits: u64,
    misses: u64,
) {
    if misses > 0 {
        ctx.dram.read_many(0, misses, rhs_row_bytes, rhs_class);
        ctx.report.sram_writes_8b += misses * rhs_row_bytes.div_ceil(8);
    }
    let contributions = hits + misses;
    if contributions > 0 {
        ctx.mac.scalar_vector_bulk(0, f, contributions);
        ctx.mac.occupy(0, merge_cycles * contributions);
        ctx.report.sram_reads_8b += contributions * (1 + rhs_row_bytes.div_ceil(8));
        ctx.report.sram_writes_8b += contributions * f as u64;
    }
}

/// Implements [`Accelerator`] for a thin wrapper around [`SpSpParams`].
macro_rules! spsp_engine {
    ($engine:ident, $config:ident) => {
        impl Accelerator for $engine {
            fn name(&self) -> &'static str {
                self.params().name
            }

            fn run(&self, workload: &PreparedWorkload) -> RunReport {
                run_spsp(&self.params(), workload)
            }

            fn sram_kb(&self) -> f64 {
                self.params().sram_kb
            }
        }
    };
}
pub(crate) use spsp_engine;
