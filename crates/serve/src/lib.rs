//! The serving layer: batch and always-on simulation over the engine
//! registry.
//!
//! Five pieces live here:
//!
//! * [`session::SimSession`] — one workload, memoized preprocessing, and
//!   name-based engine dispatch (the single-workload front door);
//! * [`batch::BatchService`] — a queue-of-[`batch::JobSpec`]s service on
//!   top of it: jobs are pure data (dataset spec + seed + engine name +
//!   partition strategy + `key=value` overrides), shared preparation is
//!   deduplicated through a keyed session pool (optionally LRU-bounded),
//!   simulations fan across worker threads via
//!   `grow_sim::exec::parallel_map`, and completed reports are cached by
//!   job key. Results come back in submission order with per-job timing
//!   and error status; a bad engine name or an invalid override fails
//!   that job, never the batch.
//! * [`store::ResultStore`] — the on-disk report cache (`results/store/`
//!   by convention): completed reports persist per canonical job key and
//!   round-trip bit-identically, so repeated queries are cache hits
//!   across process restarts; corrupt entries are quarantined, never
//!   served.
//! * [`service::AsyncService`] — the always-on front end: submissions at
//!   any time, a [`service::Ticket`] back immediately, each result
//!   streamed on completion, with priority classes, admission control,
//!   and a configurable pool of supervised worker threads
//!   ([`service::AsyncConfig::workers`]) in front of the `BatchService`
//!   core.
//! * [`governor`] — the two-level parallelism governor the worker pool
//!   consults per picked-up job: outer (cross-job) parallelism when the
//!   queue is contended, full inner (intra-job) fan-out for a lone job —
//!   a pure decision, so replays are deterministic.
//!
//! The layer is *supervised*: every job runs under `catch_unwind` with a
//! bounded, deterministic retry budget ([`batch::RetryPolicy`]), so a
//! panicking or fault-injected job (the uniform `fault=` override, see
//! [`grow_sim::fault`]) fails alone as a structured [`batch::JobError`] —
//! never the batch, never the worker. Tickets expose cooperative
//! cancellation and per-job deadlines; a worker death (the injected
//! `worker` fault site) surfaces to waiters as
//! [`service::WaitError::ServiceDead`] with a casualty list from
//! [`service::AsyncService::finish_report`], and
//! [`store::ResultStore::scrub`] audits the on-disk cache back to health.
//!
//! Because every engine's parallel cluster path is bit-identical to its
//! serial path, so is the whole service: a batch run under `GROW_SERIAL=1`
//! returns exactly the reports of a multi-threaded run — and draining the
//! async service returns exactly the reports of `run_batch`.
//!
//! ```
//! use grow_core::PartitionStrategy;
//! use grow_model::DatasetKey;
//! use grow_serve::{BatchService, JobSpec};
//!
//! let spec = DatasetKey::Cora.spec().scaled_to(300);
//! let jobs = vec![
//!     JobSpec::new(spec, 42, "grow").with_strategy(PartitionStrategy::multilevel_default()),
//!     JobSpec::new(spec, 42, "gcnax"),
//!     JobSpec::new(spec, 42, "npu"), // fails alone, not the batch
//! ];
//! let mut service = BatchService::new();
//! let results = service.run_batch(&jobs);
//! assert!(results[0].outcome.is_ok() && results[1].outcome.is_ok());
//! assert!(results[2].outcome.is_err());
//! let (grow, gcnax) = (results[0].report().unwrap(), results[1].report().unwrap());
//! assert_eq!(grow.mac_ops(), gcnax.mac_ops(), "same work, different movement");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod governor;
pub mod service;
pub mod session;
pub mod store;

pub use batch::{
    grid_jobs, scheduler_grid_jobs, BatchService, JobError, JobKey, JobResult, JobSpec,
    RetryPolicy, ServiceStats,
};
pub use governor::{InnerBudget, QueueSnapshot};
pub use service::{
    AsyncConfig, AsyncService, FinishReport, Priority, SubmitError, Ticket, WaitError,
};
pub use session::SimSession;
pub use store::{ResultStore, ScrubReport, StoreStats};
