use grow_graph::Graph;

use crate::{DatasetSpec, FeatureMatrix};

/// One GCN layer's SpDeGEMM workload: the sparse LHS feature pattern and
/// the GEMM shapes.
///
/// Per the `A*(X*W)` execution order (Section II-B) a layer runs two
/// sparse-dense GEMMs back to back on the same engine:
/// *combination* `X[n x f_in] * W[f_in x f_out]`, then *aggregation*
/// `A[n x n] * XW[n x f_out]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// Sparsity pattern of the layer input features `X(l)`.
    pub x: FeatureMatrix,
    /// Input feature width `f_in`.
    pub f_in: usize,
    /// Output feature width `f_out`.
    pub f_out: usize,
}

impl LayerWorkload {
    /// Non-zeros of `X`, i.e. scalar x vector operations in combination.
    pub fn x_nnz(&self) -> usize {
        self.x.nnz()
    }
}

/// A complete 2-layer GCN inference workload over one dataset.
#[derive(Debug, Clone)]
pub struct GcnWorkload {
    /// The dataset specification this workload instantiates.
    pub spec: DatasetSpec,
    /// The (synthetic) graph.
    pub graph: Graph,
    /// Per-layer feature patterns and shapes (2 layers, per Table I's
    /// `in-hidden-out` feature lengths).
    pub layers: Vec<LayerWorkload>,
}

impl GcnWorkload {
    /// Generates the workload: graph plus `X(0)`/`X(1)` patterns with the
    /// Table I densities.
    pub fn from_spec(spec: &DatasetSpec, seed: u64) -> Self {
        let graph = spec.graph_spec().generate(seed);
        Self::with_graph(spec, graph, seed)
    }

    /// Builds the workload around an externally supplied graph (e.g. the
    /// non-power-law R-MAT graphs of the Section VIII discussion), using
    /// `spec` only for feature dimensions and densities.
    ///
    /// # Panics
    ///
    /// Panics if the graph's node count differs from `spec.nodes`.
    pub fn with_graph(spec: &DatasetSpec, graph: Graph, seed: u64) -> Self {
        assert_eq!(graph.nodes(), spec.nodes, "graph size must match the spec");
        let n = graph.nodes();
        let [f_in, hidden, f_out] = spec.feature_dims;
        let layers = vec![
            LayerWorkload {
                x: FeatureMatrix::synthesize(n, f_in, spec.x0_density, seed ^ 0x1001),
                f_in,
                f_out: hidden,
            },
            LayerWorkload {
                x: FeatureMatrix::synthesize(n, hidden, spec.x1_density, seed ^ 0x1002),
                f_in: hidden,
                f_out,
            },
        ];
        GcnWorkload {
            spec: *spec,
            graph,
            layers,
        }
    }

    /// Total scalar x vector operations across both layers (combination
    /// `nnz(X(l))` + aggregation `nnz(A)` each) — the MAC-op invariant all
    /// engines must agree on.
    pub fn total_scalar_vector_ops(&self) -> u64 {
        let a_nnz = self.graph.directed_edges() as u64 + self.graph.nodes() as u64; // + self-loops
        self.layers.iter().map(|l| l.x_nnz() as u64 + a_nnz).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKey;

    #[test]
    fn cora_workload_shapes() {
        let w = DatasetKey::Cora.spec().instantiate(1);
        assert_eq!(w.graph.nodes(), 2708);
        assert_eq!(w.layers[0].f_in, 1433);
        assert_eq!(w.layers[0].f_out, 16);
        assert_eq!(w.layers[1].f_in, 16);
        assert_eq!(w.layers[1].f_out, 7);
        assert_eq!(w.layers[0].x.rows(), 2708);
    }

    #[test]
    fn layer_densities_follow_table1() {
        let w = DatasetKey::Pubmed.spec().instantiate(2);
        let d0 = w.layers[0].x.density();
        let d1 = w.layers[1].x.density();
        assert!((d0 - 0.100).abs() < 0.02, "X(0) density {d0}");
        assert!((d1 - 0.776).abs() < 0.05, "X(1) density {d1}");
    }

    #[test]
    fn dense_inputs_use_dense_representation() {
        let w = DatasetKey::Reddit.spec().scaled_to(2000).instantiate(3);
        assert!(matches!(w.layers[0].x, FeatureMatrix::Dense { .. }));
        assert!(matches!(w.layers[1].x, FeatureMatrix::Sparse(_)));
    }

    #[test]
    fn workload_is_deterministic() {
        let spec = DatasetKey::Cora.spec();
        let a = spec.instantiate(9);
        let b = spec.instantiate(9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.layers, b.layers);
    }

    #[test]
    fn scalar_vector_ops_counts_both_layers() {
        let w = DatasetKey::Cora.spec().instantiate(4);
        let a_nnz = (w.graph.directed_edges() + w.graph.nodes()) as u64;
        let expected = w.layers[0].x.nnz() as u64 + w.layers[1].x.nnz() as u64 + 2 * a_nnz;
        assert_eq!(w.total_scalar_vector_ops(), expected);
    }
}
