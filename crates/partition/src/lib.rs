//! Graph partitioning for GROW's locality preprocessing (Section V-C of the
//! paper).
//!
//! GROW preprocesses the adjacency matrix with a graph partitioning
//! algorithm (the paper uses METIS [20] / Graclus [6]) so that
//! "intra-cluster nodes have much larger number of edges than inter-cluster
//! nodes", then relabels nodes cluster-by-cluster (Figure 13) and extracts a
//! per-cluster top-N high-degree-node (HDN) ID list that the hardware
//! pins in the HDN cache while that cluster is being processed.
//!
//! This crate implements that software stack natively:
//!
//! * [`multilevel_partition`] — a METIS-class multilevel recursive-bisection
//!   partitioner (heavy-edge-matching coarsening, greedy-growing initial
//!   bisection, FM boundary refinement);
//! * [`label_propagation_partition`] — a faster community-detection-based
//!   alternative for very large graphs;
//! * [`ClusterLayout`] — the node relabeling + cluster ranges of Figure 13;
//! * [`hdn_lists`] — per-cluster HDN ID list extraction.
//!
//! # Example
//!
//! ```
//! use grow_graph::{CommunityGraphSpec, Graph};
//! use grow_partition::{multilevel_partition, ClusterLayout, MultilevelConfig};
//!
//! let spec = CommunityGraphSpec {
//!     nodes: 400, avg_degree: 8.0, communities: 4,
//!     intra_fraction: 0.9, power_law_exponent: 2.5, shuffle_fraction: 1.0,
//! };
//! let graph = spec.generate(1);
//! let parts = multilevel_partition(&graph, 4, &MultilevelConfig::default());
//! assert!(parts.intra_edge_fraction(&graph) > 0.5);
//! let layout = ClusterLayout::from_partitioning(&parts);
//! assert_eq!(layout.clusters(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hdn;
mod label_prop;
mod layout;
mod multilevel;
mod partitioning;

pub use hdn::hdn_lists;
pub use label_prop::{label_propagation_partition, LabelPropagationConfig};
pub use layout::ClusterLayout;
pub use multilevel::{multilevel_partition, MultilevelConfig};
pub use partitioning::Partitioning;
