//! Workload analyses over sparsity patterns.
//!
//! These functions regenerate the *matrix-level* characterizations of the
//! paper, independent of any accelerator model:
//!
//! * [`gcn_mac_counts`] — Figure 2, the number of MAC operations of the two
//!   GCN execution orders `(A*X)*W` vs `A*(X*W)`;
//! * [`tile_nnz_histogram`] — Figure 5, the distribution of non-zeros per
//!   2D tile under GCNAX's tiling.

use crate::{CsrPattern, RowMajorSparse};

/// MAC-operation counts for the two GCN execution orders (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacCounts {
    /// MACs of `A * (X * W)`: two consecutive sparse-dense GEMMs.
    pub a_xw: u64,
    /// MACs of `(A * X) * W`: a sparse-sparse GEMM followed by a dense GEMM.
    pub ax_w: u64,
}

impl MacCounts {
    /// `ax_w / a_xw`: how many times more MACs the `(A*X)*W` order costs.
    pub fn ratio(&self) -> f64 {
        self.ax_w as f64 / self.a_xw as f64
    }
}

/// Counts the MAC operations of both GCN execution orders (Figure 2).
///
/// * `A*(X*W)`: `nnz(X) * f_out` MACs for the combination SpDeGEMM plus
///   `nnz(A) * f_out` for the aggregation SpDeGEMM — exact.
/// * `(A*X)*W`: the sparse-sparse `A*X` costs
///   `sum_k indegree_A(k) * row_nnz(X, k)` MACs — exact, computed from the
///   column counts of `A`. The subsequent `(AX)*W` dense GEMM costs
///   `nnz(AX) * f_out`; `nnz(AX)` is estimated under the standard
///   independence assumption (`E[nnz(AX_row_i)] = f_in * (1 - prod_k (1 -
///   d_k))`) because materializing `AX`'s pattern for the large graphs is
///   intractable — it is nearly dense, which is the paper's very point.
///
/// # Panics
///
/// Panics if `a.cols() != x.rows()`.
pub fn gcn_mac_counts(a: &CsrPattern, x: &RowMajorSparse<'_>, f_out: usize) -> MacCounts {
    assert_eq!(a.cols(), x.rows(), "A columns must match X rows");
    let f_in = x.cols();
    let a_xw = (x.nnz() as u64 + a.nnz() as u64) * f_out as u64;

    // Column counts of A = in-degrees of the graph nodes.
    let mut indeg = vec![0u64; a.cols()];
    for &c in a.indices() {
        indeg[c as usize] += 1;
    }
    // Row densities of X, and per-node log(1 - density) for the union bound.
    let mut row_density = vec![0.0f64; x.rows()];
    let mut spgemm_macs = 0u64;
    for k in 0..x.rows() {
        let nnz_k = x.row_nnz(k) as u64;
        spgemm_macs += indeg[k] * nnz_k;
        row_density[k] = nnz_k as f64 / f_in.max(1) as f64;
    }
    // E[nnz(AX)] = sum_i f_in * (1 - prod_{k in row i} (1 - d_k)).
    let mut nnz_ax = 0.0f64;
    for i in 0..a.rows() {
        let mut log_empty = 0.0f64;
        let mut certain = false;
        for &k in a.row_indices(i) {
            let d = row_density[k as usize];
            if d >= 1.0 {
                certain = true;
                break;
            }
            log_empty += (1.0 - d).ln();
        }
        let fill = if certain { 1.0 } else { 1.0 - log_empty.exp() };
        nnz_ax += f_in as f64 * fill;
    }
    let ax_w = spgemm_macs + (nnz_ax * f_out as f64).round() as u64;
    MacCounts { a_xw, ax_w }
}

/// Histogram of non-zeros per non-empty 2D tile (Figure 5).
///
/// GCNAX fetches the sparse operand in `tile_rows x tile_cols` tiles; the
/// number of non-zeros that land in each *fetched* (i.e. non-empty) tile
/// determines how much of every 64-byte DRAM access is useful. Buckets are
/// defined by inclusive upper bounds, e.g. `[1, 2, 8, 16]` produces buckets
/// `1`, `2`, `3..=8`, `9..=16`, `>16` (the paper's Figure 5(a) buckets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileHistogram {
    /// Inclusive upper bounds of each bucket; one extra overflow bucket is
    /// appended for values above the last bound.
    pub bounds: Vec<usize>,
    /// Tile counts per bucket (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total number of non-empty tiles.
    pub nonempty_tiles: u64,
}

impl TileHistogram {
    /// Fraction of non-empty tiles in each bucket.
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.nonempty_tiles.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Mean number of non-zeros per non-empty tile, from the raw stream.
    pub fn bucket_label(&self, idx: usize) -> String {
        if idx == 0 {
            format!("{}", self.bounds[0])
        } else if idx < self.bounds.len() {
            if self.bounds[idx] == self.bounds[idx - 1] + 1 {
                format!("{}", self.bounds[idx])
            } else {
                format!("{}~{}", self.bounds[idx - 1] + 1, self.bounds[idx])
            }
        } else {
            format!(">{}", self.bounds[self.bounds.len() - 1])
        }
    }
}

/// Computes the per-tile non-zero histogram of Figure 5.
///
/// Processes the matrix strip by strip so memory stays `O(cols /
/// tile_cols)` even for multi-million-edge graphs.
///
/// # Panics
///
/// Panics if `tile_rows`, `tile_cols`, or `bounds` is empty/zero, or if
/// `bounds` is not strictly increasing.
pub fn tile_nnz_histogram(
    view: &RowMajorSparse<'_>,
    tile_rows: usize,
    tile_cols: usize,
    bounds: &[usize],
) -> TileHistogram {
    assert!(
        tile_rows > 0 && tile_cols > 0,
        "tile dimensions must be positive"
    );
    assert!(!bounds.is_empty(), "at least one bucket bound is required");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "bounds must be strictly increasing"
    );

    let mut counts = vec![0u64; bounds.len() + 1];
    let mut nonempty = 0u64;
    let n_col_tiles = view.cols().div_ceil(tile_cols);

    let bucket_of = |nnz: usize, counts: &mut [u64]| {
        let idx = bounds
            .iter()
            .position(|&b| nnz <= b)
            .unwrap_or(bounds.len());
        counts[idx] += 1;
    };

    if let RowMajorSparse::Dense { rows, cols } = *view {
        // Every tile is full; compute the grid analytically.
        for tr in 0..rows.div_ceil(tile_rows) {
            let h = tile_rows.min(rows - tr * tile_rows);
            for tc in 0..n_col_tiles {
                let w = tile_cols.min(cols - tc * tile_cols);
                bucket_of(h * w, &mut counts);
                nonempty += 1;
            }
        }
        return TileHistogram {
            bounds: bounds.to_vec(),
            counts,
            nonempty_tiles: nonempty,
        };
    }

    let mut strip = vec![0u32; n_col_tiles];
    let mut row = 0;
    while row < view.rows() {
        let strip_end = (row + tile_rows).min(view.rows());
        for r in row..strip_end {
            for c in view.row_iter(r) {
                strip[c as usize / tile_cols] += 1;
            }
        }
        for slot in &mut strip {
            if *slot > 0 {
                bucket_of(*slot as usize, &mut counts);
                nonempty += 1;
                *slot = 0;
            }
        }
        row = strip_end;
    }
    TileHistogram {
        bounds: bounds.to_vec(),
        counts,
        nonempty_tiles: nonempty,
    }
}

/// The Figure 5(a) bucket bounds for the aggregation matrix `A`.
pub const FIG5A_BOUNDS: &[usize] = &[1, 2, 8, 16];

/// The Figure 5(b) bucket bounds for the combination matrix `X`.
pub const FIG5B_BOUNDS: &[usize] = &[1, 2, 8, 1024];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, CsrPattern};

    fn diag_pattern(n: usize) -> CsrPattern {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.to_csr().into_pattern()
    }

    #[test]
    fn mac_counts_identity_a_dense_x() {
        // A = I(4), X dense 4x3, f_out = 2.
        let a = diag_pattern(4);
        let x = RowMajorSparse::Dense { rows: 4, cols: 3 };
        let m = gcn_mac_counts(&a, &x, 2);
        // A*(XW): nnz(X)=12, nnz(A)=4 -> (12+4)*2 = 32.
        assert_eq!(m.a_xw, 32);
        // (A*X): indeg=1 per node, row_nnz(X)=3 -> 12 MACs; AX is dense
        // (12 nnz) -> 12*2=24 more; total 36.
        assert_eq!(m.ax_w, 36);
    }

    #[test]
    fn mac_ratio_grows_with_dense_x_and_sparse_a() {
        // Sparse A (diag) with wide dense X: (A*X)*W must cost much more.
        let a = diag_pattern(50);
        let x = RowMajorSparse::Dense {
            rows: 50,
            cols: 200,
        };
        let m = gcn_mac_counts(&a, &x, 8);
        assert!(m.ratio() > 1.0, "ratio = {}", m.ratio());
    }

    #[test]
    fn tile_histogram_counts_single_nnz_tiles() {
        // 4x4 matrix, 2x2 tiles, nonzeros on the diagonal: each of the two
        // diagonal tiles holds 2 nnz.
        let p = diag_pattern(4);
        let h = tile_nnz_histogram(&RowMajorSparse::from(&p), 2, 2, &[1, 2]);
        assert_eq!(h.nonempty_tiles, 2);
        assert_eq!(h.counts, vec![0, 2, 0]);
    }

    #[test]
    fn tile_histogram_dense_view() {
        let v = RowMajorSparse::Dense { rows: 4, cols: 4 };
        let h = tile_nnz_histogram(&v, 2, 2, &[1, 2]);
        assert_eq!(h.nonempty_tiles, 4);
        // every tile has 4 nnz -> overflow bucket
        assert_eq!(h.counts, vec![0, 0, 4]);
    }

    #[test]
    fn tile_histogram_ragged_edges() {
        // 3x3 with 2x2 tiles: edge tiles are smaller but still counted.
        let v = RowMajorSparse::Dense { rows: 3, cols: 3 };
        let h = tile_nnz_histogram(&v, 2, 2, &[1, 2, 8]);
        assert_eq!(h.nonempty_tiles, 4);
        // tiles: 4, 2, 2, 1 nnz
        assert_eq!(h.counts, vec![1, 2, 1, 0]);
    }

    #[test]
    fn bucket_labels_match_paper_style() {
        let h = TileHistogram {
            bounds: vec![1, 2, 8, 16],
            counts: vec![0; 5],
            nonempty_tiles: 0,
        };
        assert_eq!(h.bucket_label(0), "1");
        assert_eq!(h.bucket_label(1), "2");
        assert_eq!(h.bucket_label(2), "3~8");
        assert_eq!(h.bucket_label(3), "9~16");
        assert_eq!(h.bucket_label(4), ">16");
    }

    #[test]
    fn fractions_sum_to_one_for_nonempty() {
        let p = diag_pattern(8);
        let h = tile_nnz_histogram(&RowMajorSparse::from(&p), 4, 4, FIG5A_BOUNDS);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
