//! The two-level parallelism governor for the concurrent serving path.
//!
//! A multi-worker [`AsyncService`](crate::AsyncService) has two places to
//! spend hardware threads: *outer* parallelism (several jobs computing at
//! once, one per pool worker) and *inner* parallelism (one job fanning
//! its own cluster simulation across threads through
//! `grow_sim::exec::parallel_map`). Spending both at once oversubscribes
//! the machine quadratically — the same trap
//! [`BatchService::run_batch`](crate::BatchService::run_batch) avoids
//! with its one-level fan-out rule — so the governor picks exactly one
//! level per job, from the in-flight mix at the moment the job is picked
//! up:
//!
//! * **Contended queue** (another job running or waiting): the job-grain
//!   fan-out saturates the cores, so this job's inner fan-out is forced
//!   serial.
//! * **Lone job** (nothing else running or queued): outer parallelism is
//!   worthless, so the job keeps the full inner thread budget.
//!
//! The decision is a pure function of the queue snapshot and the thread
//! budget (hardware threads, overridden by `GROW_THREADS`) — no clocks,
//! no load averages — so a replayed queue makes identical choices, and
//! because every engine is bit-identical between its serial and parallel
//! paths, the choice can never change a report, only its wall time.

use grow_sim::exec::{with_mode, with_workers, ExecMode};

/// What the governor sees: the queue at the instant a worker picks up a
/// job, with the picked job already counted in [`running`](Self::running).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Submissions still waiting in the priority queues.
    pub queued: usize,
    /// Jobs being computed right now, including the one just picked up
    /// (so `running >= 1` whenever a decision is being made).
    pub running: usize,
}

impl QueueSnapshot {
    /// Total jobs the decision is arbitrating between.
    pub fn in_flight(&self) -> usize {
        self.queued + self.running
    }
}

/// The governor's verdict: how much inner (intra-job) parallelism the
/// picked job may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerBudget {
    /// Forced-serial inner fan-out — the outer (cross-job) level owns the
    /// cores.
    Serial,
    /// Full inner fan-out with this many worker threads — the job is
    /// alone, the inner level owns the cores.
    Threads(usize),
}

impl InnerBudget {
    /// Runs `f` under this budget: [`Serial`](Self::Serial) forces the
    /// calling thread's execution mode serial for the duration,
    /// [`Threads`](Self::Threads) pins the worker count. Either way the
    /// override is scoped and restored on exit (also on panic), and a
    /// session-level serial override (`GROW_SERIAL=1` or an enclosing
    /// `with_mode`) still wins — the budget widens nothing, it only
    /// narrows.
    pub fn apply<R>(self, f: impl FnOnce() -> R) -> R {
        match self {
            InnerBudget::Serial => with_mode(ExecMode::Serial, f),
            InnerBudget::Threads(n) => with_workers(n, f),
        }
    }
}

/// The effective inner-thread budget: an explicit `GROW_THREADS`-style
/// override wins — including oversubscription, which the determinism
/// tests rely on — otherwise the hardware thread count (minimum 1).
pub fn thread_budget(hardware_threads: usize, configured_threads: Option<usize>) -> usize {
    configured_threads
        .filter(|&n| n > 0)
        .unwrap_or(hardware_threads)
        .max(1)
}

/// Decides the picked job's inner-parallelism budget from the queue
/// snapshot and the thread budget. Pure and total: same inputs, same
/// verdict, on every machine and in every leg of the determinism matrix.
pub fn inner_budget(
    snapshot: QueueSnapshot,
    hardware_threads: usize,
    configured_threads: Option<usize>,
) -> InnerBudget {
    if snapshot.in_flight() > 1 {
        InnerBudget::Serial
    } else {
        InnerBudget::Threads(thread_budget(hardware_threads, configured_threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_job_keeps_the_full_inner_budget() {
        let lone = QueueSnapshot {
            queued: 0,
            running: 1,
        };
        assert_eq!(inner_budget(lone, 8, None), InnerBudget::Threads(8));
        assert_eq!(inner_budget(lone, 8, Some(3)), InnerBudget::Threads(3));
        assert_eq!(
            inner_budget(lone, 0, Some(0)),
            InnerBudget::Threads(1),
            "degenerate inputs clamp to one thread"
        );
    }

    #[test]
    fn any_contention_forces_the_inner_level_serial() {
        for snapshot in [
            QueueSnapshot {
                queued: 1,
                running: 1,
            },
            QueueSnapshot {
                queued: 0,
                running: 2,
            },
            QueueSnapshot {
                queued: 7,
                running: 4,
            },
        ] {
            assert_eq!(
                inner_budget(snapshot, 8, None),
                InnerBudget::Serial,
                "{snapshot:?}"
            );
        }
    }

    #[test]
    fn the_decision_is_pure_in_its_inputs() {
        let snapshot = QueueSnapshot {
            queued: 2,
            running: 1,
        };
        let first = inner_budget(snapshot, 16, Some(4));
        for _ in 0..10 {
            assert_eq!(inner_budget(snapshot, 16, Some(4)), first);
        }
    }

    #[test]
    fn apply_narrows_execution_for_the_scope_only() {
        use grow_sim::exec::{parallel_map, ExecContext};
        let before = ExecContext::capture();
        let under_serial = InnerBudget::Serial.apply(ExecContext::capture);
        let doubled = InnerBudget::Threads(2).apply(|| parallel_map(vec![1, 2, 3], |_, x| x * 2));
        assert_eq!(doubled, [2, 4, 6]);
        assert_eq!(ExecContext::capture(), before, "overrides restored");
        assert_ne!(under_serial, before, "serial override visible in scope");
    }
}
