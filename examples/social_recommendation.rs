//! GCN inference over a large power-law social/e-commerce graph — the
//! workload class (Yelp/Pokec/Amazon) where GROW's graph partitioning and
//! HDN caching matter most (Sections V-C and VII-A).
//!
//! The example walks the paper's locality story end to end: power-law
//! degree statistics (Figure 11), partitioning quality (Figure 13), HDN
//! hit rates with and without partitioning (Figure 17), and the resulting
//! traffic and speedup (Figures 18/20). The three timing configurations
//! (GCNAX, GROW w/o G.P., GROW with G.P.) run as one `grow_serve` batch
//! on a single pooled workload.
//!
//! ```text
//! cargo run --release --example social_recommendation
//! ```

use grow::accel::PartitionStrategy;
use grow::graph::stats;
use grow::model::DatasetKey;
use grow::serve::{BatchService, JobSpec};

fn main() {
    // A Yelp-like graph (review/recommendation workload), moderately
    // scaled so the example runs in seconds.
    let spec = DatasetKey::Yelp.spec().scaled_to(30_000);
    let seed = 99;
    let partitioned = PartitionStrategy::multilevel_default();

    // ---- the three paper configurations, as one batch of data ----------
    let jobs = [
        JobSpec::new(spec, seed, "gcnax"),
        JobSpec::new(spec, seed, "grow"),
        JobSpec::new(spec, seed, "grow").with_strategy(partitioned),
    ];
    let mut service = BatchService::new();
    let results = service.run_batch(&jobs);
    let (gcnax, without, with) = (
        results[0].report().expect("registered engine"),
        results[1].report().expect("registered engine"),
        results[2].report().expect("registered engine"),
    );

    // All three jobs shared one pooled session; inspect its workload.
    let session = service
        .session_for(&jobs[0])
        .expect("session pooled by the batch");
    let graph = &session.workload().graph;
    println!("social graph: {graph}");

    // ---- the power-law structure GROW exploits (Figure 11) -------------
    let degrees = stats::sorted_degrees(graph);
    println!(
        "degree distribution: max {}, p50 {}, top-1% of nodes cover {:.1}% of edges",
        degrees[0],
        degrees[degrees.len() / 2],
        100.0 * stats::top_k_edge_coverage(graph, graph.nodes() / 100)
    );
    if let Some(alpha) = stats::power_law_alpha(graph, 20) {
        println!("power-law exponent (MLE): {alpha:.2}");
    }

    // ---- partitioning (Figure 13): pure relabeling, better locality ----
    let prepared = session
        .get_prepared(partitioned)
        .expect("prepared for the partitioned job");
    println!(
        "\npartitioning: {} clusters, intra-cluster edges {:.1}% (random assignment \
         would give ~{:.1}%)",
        prepared.clusters.len(),
        100.0 * prepared.intra_edge_fraction,
        100.0 / prepared.clusters.len() as f64
    );

    // ---- HDN cache effectiveness (Figure 17) ---------------------------
    println!(
        "HDN cache hit rate: {:.1}% without partitioning -> {:.1}% with partitioning",
        100.0 * without.aggregation_cache().hit_rate().unwrap_or(0.0),
        100.0 * with.aggregation_cache().hit_rate().unwrap_or(0.0),
    );

    // ---- traffic and speedup vs GCNAX (Figures 18/20) -------------------
    println!(
        "\nDRAM traffic: GCNAX {:.1} MiB | GROW w/o G.P. {:.1} MiB | GROW with G.P. {:.1} MiB",
        gcnax.dram_bytes() as f64 / (1 << 20) as f64,
        without.dram_bytes() as f64 / (1 << 20) as f64,
        with.dram_bytes() as f64 / (1 << 20) as f64,
    );
    println!(
        "speedup vs GCNAX: {:.2}x without partitioning, {:.2}x with partitioning",
        gcnax.total_cycles() as f64 / without.total_cycles() as f64,
        gcnax.total_cycles() as f64 / with.total_cycles() as f64,
    );
    println!(
        "aggregation share of runtime: GCNAX {:.0}% -> GROW {:.0}% (bottleneck shifts \
         to combination, Section VII-B)",
        100.0 * gcnax.aggregation_cycles() as f64 / gcnax.total_cycles() as f64,
        100.0 * with.aggregation_cycles() as f64 / with.total_cycles() as f64,
    );
}
