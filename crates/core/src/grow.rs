//! The GROW accelerator model (Section V of the paper).
//!
//! GROW executes both GCN phases on one unified row-stationary SpDeGEMM
//! engine (Figure 8): a 16-lane MAC vector unit, an I-BUF for the CSR
//! stream of the sparse LHS, an I-BUF_dense split into the HDN cache and a
//! CAM-based HDN ID list, an O-BUF for in-flight output rows, and a DMA
//! unit. Aggregation walks the adjacency rows (Gustavson's algorithm,
//! Figure 9(b)); each non-zero's column is looked up in the HDN ID list —
//! hits read the pinned RHS row from the HDN cache, misses allocate
//! LDN/LHS-ID table entries and run ahead across up to `runahead` output
//! rows (Figures 15/16).
//!
//! Clusters are simulated independently through the shared
//! [`pipeline`](crate::pipeline) harness — in parallel across threads,
//! merged deterministically in cluster order — drawing their per-cluster
//! state (HDN cache, runahead tables, window, probe plans) from a
//! [`ScratchArena`] so the steady-state simulation allocates nothing.
//!
//! # The aggregation hot path: plan, then replay
//!
//! Because the pinned HDN set is fixed for a whole cluster (loaded once in
//! the prologue, never mutated by probes), each non-zero's hit/miss
//! outcome is a pure per-row function of the adjacency and the pinned set.
//! The cluster simulation therefore runs in two phases:
//!
//! 1. **Plan** (data-parallel): walk each row's column slice once and emit
//!    a compact probe plan — runs of consecutive hits collapsed to one
//!    entry, misses recorded individually in order. Pure per-row work,
//!    which is what allows *intra-cluster row-range sharding*: clusters
//!    larger than [`GrowConfig::shard_rows`] split into deterministic row
//!    ranges fanned across threads, and the ordered concatenation of the
//!    shard plans is — by construction — the plan an unsharded walk
//!    produces.
//! 2. **Replay** (sequential): drive the cycle-accurate machinery (FIFO
//!    channel, MAC array, runahead tables, in-order retirement window)
//!    over the plan. A run of `h` hits issues as one
//!    `scalar_vector_bulk(now, f, h)`, which is arithmetically identical
//!    to `h` back-to-back `scalar_vector` calls — `now` cannot change
//!    between consecutive hits — so the replay is bit-identical to the
//!    original per-probe loop while doing per-*event* rather than
//!    per-nonzero work on the (dominant) hit traffic.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::OnceLock;

use grow_sim::{
    CacheStats, Cycle, Dram, DramConfig, FaultPlan, IssueOutcome, LruRowCache, MacArray,
    PinnedRowCache, RunaheadTables, ScratchArena, TrafficClass, Waiter, ELEMENT_BYTES,
    HDN_ID_BYTES, INDEX_BYTES,
};
use grow_sparse::{CsrPattern, RowMajorSparse};

use crate::exec_model::ExecModel;
use crate::pipeline::{self, PhaseCtx};
use crate::plan::{self, PlanBuffer, ShardRows, ShardSpec};
use crate::{Accelerator, LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport};

/// HDN cache replacement policy (the Section VIII discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Statically pin the per-cluster top-N high-degree nodes (the paper's
    /// proposal, found to yield "the most robust speedups").
    Pinned,
    /// Demand-filled LRU (the alternative the paper rejects). The demand
    /// cache persists across cluster boundaries — it has no hardware
    /// reason to flush the way the pinned set is swapped — so this mode
    /// simulates clusters serially instead of in parallel.
    Lru,
}

/// GROW configuration (Table III defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowConfig {
    /// MAC lanes (Table III: 16 MACs, 64-bit).
    pub mac_lanes: usize,
    /// HDN cache capacity in bytes (Table III: 512 KB).
    pub hdn_cache_bytes: u64,
    /// HDN ID list entries (Table III: 12 KB at 3 B/entry = 4096).
    pub hdn_id_entries: usize,
    /// I-BUF_sparse capacity in bytes (Table III: 12 KB).
    pub ibuf_sparse_bytes: u64,
    /// O-BUF_dense capacity in bytes (Table III: 2 KB).
    pub obuf_bytes: u64,
    /// Runahead execution degree: output rows concurrently in flight
    /// (Table III: 16).
    pub runahead: usize,
    /// LDN table entries (Section V-D: M = 16).
    pub ldn_entries: usize,
    /// LHS-ID table entries (Section V-D: N = 64).
    pub lhs_id_entries: usize,
    /// Off-chip memory parameters (Table III: 128 GB/s).
    pub dram: DramConfig,
    /// Enables HDN caching (disable to reproduce the "GROW w/o HDN
    /// caching" bar of Figure 19).
    pub hdn_caching: bool,
    /// Replacement policy of the HDN cache.
    pub replacement: ReplacementPolicy,
    /// Intra-cluster row-range sharding of the aggregation probe-plan
    /// pass: clusters with more rows than the (fixed or auto-derived)
    /// threshold split into threshold-row ranges fanned across worker
    /// threads. The merged result is bit-identical to an unsharded run at
    /// any setting — this is purely a simulator-throughput knob for huge
    /// clusters (e.g. Reddit's 4096-node grain).
    pub shard_rows: ShardRows,
    /// Multi-PE projection (Figure 24): PE count and cluster scheduler.
    pub multi_pe: crate::schedule::MultiPeConfig,
    /// Deterministic fault-injection plan (the uniform `fault=` override;
    /// [`FaultPlan::OFF`] — the default — leaves reports bit-identical to
    /// a build without fault support).
    pub fault: FaultPlan,
}

impl Default for GrowConfig {
    fn default() -> Self {
        GrowConfig {
            mac_lanes: 16,
            hdn_cache_bytes: 512 * 1024,
            hdn_id_entries: 4096,
            ibuf_sparse_bytes: 12 * 1024,
            obuf_bytes: 2 * 1024,
            runahead: 16,
            ldn_entries: 16,
            lhs_id_entries: 64,
            dram: DramConfig::default(),
            hdn_caching: true,
            replacement: ReplacementPolicy::Pinned,
            shard_rows: ShardRows::Off,
            multi_pe: crate::schedule::MultiPeConfig::default(),
            fault: FaultPlan::OFF,
        }
    }
}

/// One step of a row's probe plan (plan-phase output, replay-phase input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanOp {
    /// A run of consecutive HDN-cache hits.
    Hits(u32),
    /// One cache-missing RHS row id, to be issued through the runahead
    /// tables.
    Miss(u32),
}

/// One row of the probe plan: its non-zero count and how many [`PlanOp`]s
/// belong to it in the flat op stream.
#[derive(Debug, Clone, Copy, Default)]
struct RowPlan {
    nnz: u32,
    ops: u32,
}

/// Reusable probe-plan buffers: the plan-phase output for one row range.
#[derive(Debug, Default)]
struct PlanBuf {
    rows: Vec<RowPlan>,
    ops: Vec<PlanOp>,
    hits: u64,
    misses: u64,
}

impl PlanBuffer for PlanBuf {
    fn clear(&mut self) {
        self.rows.clear();
        self.ops.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

impl PlanBuf {
    /// Ordered merge of a shard's plan onto this one.
    fn absorb(&mut self, shard: &PlanBuf) {
        self.rows.extend_from_slice(&shard.rows);
        self.ops.extend_from_slice(&shard.ops);
        self.hits += shard.hits;
        self.misses += shard.misses;
    }
}

/// A retained aggregation plan for one cluster, replayed by later layers
/// when the pinned set (keyed by its `take` prefix length) matches.
#[derive(Debug)]
struct CachedPlan {
    take: usize,
    plan: PlanBuf,
}

/// Builds the probe plan for `rows`: a pure per-row function of the
/// adjacency structure and the (immutable) pinned set, so any row-range
/// partition of a cluster concatenates to the same plan as one pass.
/// `pinned` is `None` when HDN caching is disabled — every non-zero is
/// then an uncached fetch and no probe statistics accrue.
fn plan_rows(
    adjacency: &CsrPattern,
    rows: Range<usize>,
    pinned: Option<&PinnedRowCache>,
    out: &mut PlanBuf,
) {
    for slice in adjacency.row_slices(rows) {
        let ops_before = out.ops.len();
        match pinned {
            Some(pinned) => {
                let mut run = 0u32;
                for &k in slice {
                    if pinned.peek(k) {
                        run += 1;
                    } else {
                        if run > 0 {
                            out.ops.push(PlanOp::Hits(run));
                            out.hits += run as u64;
                            run = 0;
                        }
                        out.ops.push(PlanOp::Miss(k));
                        out.misses += 1;
                    }
                }
                if run > 0 {
                    out.ops.push(PlanOp::Hits(run));
                    out.hits += run as u64;
                }
            }
            None => out.ops.extend(slice.iter().map(|&k| PlanOp::Miss(k))),
        }
        out.rows.push(RowPlan {
            nnz: slice.len() as u32,
            ops: (out.ops.len() - ops_before) as u32,
        });
    }
}

/// Per-worker scratch of the aggregation cluster path, recycled through a
/// [`ScratchArena`]: every field is fully re-initialized at cluster start
/// (`reset`/`clear`), never reconstructed.
#[derive(Debug, Default)]
struct GrowScratch {
    pinned: PinnedRowCache,
    tables: RunaheadTables,
    /// Zero-capacity stand-in for [`GrowEngine::drain_one`]'s LRU slot in
    /// the pinned/no-cache modes (never probed or filled there).
    lru_dummy: LruRowCache,
    window: VecDeque<u32>,
    pending: Vec<u32>,
    plan: PlanBuf,
}

/// The GROW accelerator timing model.
#[derive(Debug, Clone, Default)]
pub struct GrowEngine {
    config: GrowConfig,
}

impl GrowEngine {
    /// Creates an engine with an explicit configuration.
    pub fn new(config: GrowConfig) -> Self {
        GrowEngine { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &GrowConfig {
        &self.config
    }

    /// HDN cache capacity in RHS rows for an `f`-wide dense matrix.
    fn cache_rows(&self, f: usize) -> usize {
        (self.config.hdn_cache_bytes / (f as u64 * ELEMENT_BYTES)) as usize
    }

    /// Simulates the combination phase `X * W`. `W` (f_in x f_out) is
    /// pinned on-chip — every Table I configuration fits in the 512 KB
    /// I-BUF_dense; larger weight matrices are processed in column chunks.
    fn run_combination(
        &self,
        model: &ExecModel,
        x: &RowMajorSparse<'_>,
        f_out: usize,
        clusters: &[Range<usize>],
    ) -> PhaseReport {
        let cfg = &self.config;
        let f_in = x.cols();
        let mut phase = PhaseReport::new(PhaseKind::Combination);

        // Column-chunk W so each chunk fits in the dense buffer.
        let w_row_bytes = f_out as u64 * ELEMENT_BYTES;
        let w_bytes = f_in as u64 * w_row_bytes;
        let passes = w_bytes.div_ceil(cfg.hdn_cache_bytes).max(1) as usize;
        let chunk_f = f_out.div_ceil(passes);

        for pass in 0..passes {
            let this_f = chunk_f.min(f_out.saturating_sub(pass * chunk_f));
            if this_f == 0 {
                break;
            }
            // Prologue: preload the W chunk — contiguous when it is the
            // whole matrix, otherwise one strided read per W row.
            let mut pre = PhaseCtx::new(PhaseKind::Combination, cfg.dram, cfg.mac_lanes);
            pre.now = if passes == 1 {
                let done = pre.dram.read_stream(0, w_bytes, TrafficClass::Weights);
                pre.dram.round_burst(w_bytes, TrafficClass::Weights);
                done
            } else {
                pre.dram.read_many(
                    0,
                    f_in as u64,
                    this_f as u64 * ELEMENT_BYTES,
                    TrafficClass::Weights,
                )
            };
            pre.report.sram_writes_8b += f_in as u64 * this_f as u64;
            phase.absorb_sequential(pre.finish());

            // Stream X rows cluster by cluster; every non-zero hits the
            // on-chip W.
            let clustered =
                pipeline::run_clusters(model, PhaseKind::Combination, clusters, |_, cluster| {
                    let mut ctx = PhaseCtx::new(PhaseKind::Combination, cfg.dram, cfg.mac_lanes);
                    let mut burst = 0u64;
                    let mut total_nnz = 0u64;
                    for row in cluster {
                        let nnz = x.row_nnz(row) as u64;
                        if nnz == 0 {
                            continue;
                        }
                        let stream = nnz * (ELEMENT_BYTES + INDEX_BYTES) + INDEX_BYTES;
                        ctx.dram.read_stream(0, stream, TrafficClass::LhsSparse);
                        burst += stream;
                        total_nnz += nnz;
                        ctx.report.sram_reads_8b += nnz * (1 + this_f as u64); // X elem + W row
                        ctx.report.sram_writes_8b += nnz * this_f as u64; // O-BUF accumulate
                                                                          // Output row write-back for this chunk.
                        ctx.dram
                            .write(0, this_f as u64 * ELEMENT_BYTES, TrafficClass::Output);
                        ctx.report.sram_reads_8b += this_f as u64;
                    }
                    // All MAC issue gates are cycle 0 and the MAC array is
                    // pure integer state independent of the channel, so
                    // one merged bulk call is bit-exact versus the
                    // per-row calls it replaces.
                    ctx.mac.scalar_vector_bulk(0, this_f, total_nnz);
                    ctx.dram.round_burst(burst, TrafficClass::LhsSparse);
                    ctx.finish_cluster()
                });
            phase.absorb_sequential(clustered);
        }
        phase
    }

    /// Simulates the aggregation phase `A * XW` with HDN caching and
    /// multi-row-stationary runahead execution. Each cluster runs in its
    /// own context (prologue preload, runahead tables, window, cache) —
    /// they were already drained and re-pinned at cluster boundaries, which
    /// is exactly what makes them independent.
    fn run_aggregation(
        &self,
        model: &ExecModel,
        workload: &PreparedWorkload,
        f_out: usize,
        scratch: &ScratchArena<GrowScratch>,
        shard_pool: &ScratchArena<PlanBuf>,
        plan_store: Option<&[OnceLock<CachedPlan>]>,
    ) -> PhaseReport {
        let cfg = &self.config;

        if matches!(cfg.replacement, ReplacementPolicy::Lru) {
            // The demand-filled LRU study (Section VIII): a demand cache
            // has no hardware reason to flush at cluster boundaries the
            // way the pinned set is swapped, so the cache is shared across
            // clusters — which also means the clusters are *not*
            // independent and must run serially. Only the paper's default
            // pinned mode gets the parallel/planned path. (The end-to-end
            // model still composes the serially-simulated per-cluster
            // timelines; cross-cluster cache state is an approximation
            // this study accepts.)
            let n = workload.adjacency.rows();
            let mut lru = LruRowCache::new(self.cache_rows(f_out), n);
            let partials: Vec<PhaseReport> = workload
                .clusters
                .iter()
                .map(|cluster| {
                    self.aggregate_cluster_lru(workload, f_out, cluster.clone(), &mut lru)
                })
                .collect();
            return model.compose(PhaseKind::Aggregation, partials);
        }

        // Resolve the sharding spec once per phase (`auto` scans the
        // cluster-size statistics), not once per cluster.
        let spec = cfg.shard_rows.spec(workload);
        pipeline::run_clusters_scratched(
            model,
            PhaseKind::Aggregation,
            &workload.clusters,
            scratch,
            |s, ci, cluster| {
                let cell = plan_store.map(|store| &store[ci]);
                self.aggregate_cluster(workload, f_out, ci, cluster, spec, s, shard_pool, cell)
            },
        )
    }

    /// Simulates one cluster of the aggregation phase in an isolated
    /// context (pinned or no-cache modes): plan phase — sharded across
    /// (nnz-balanced) row ranges when the cluster exceeds the threshold,
    /// and produced *ahead* of the replay through a bounded-depth queue —
    /// then sequential cycle-accurate replay in range order. All working
    /// state comes from `scratch` and is recycled. When `cell` is given,
    /// the merged plan is retained there so later layers with the same
    /// pinned set replay it without re-planning.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_cluster(
        &self,
        workload: &PreparedWorkload,
        f_out: usize,
        ci: usize,
        cluster: Range<usize>,
        spec: ShardSpec,
        scratch: &mut GrowScratch,
        shard_pool: &ScratchArena<PlanBuf>,
        cell: Option<&OnceLock<CachedPlan>>,
    ) -> PhaseReport {
        let cfg = &self.config;
        let adjacency = &workload.adjacency;
        let n = adjacency.rows();
        let row_bytes = f_out as u64 * ELEMENT_BYTES;
        let f_words = f_out as u64;
        let cache_rows = self.cache_rows(f_out);

        let GrowScratch {
            pinned,
            tables,
            lru_dummy,
            window,
            pending,
            plan,
        } = scratch;
        tables.reset(cfg.ldn_entries, cfg.lhs_id_entries);
        window.clear();
        pending.clear();
        pending.resize(cluster.len(), 0);
        plan.clear();

        let mut ctx = PhaseCtx::new(PhaseKind::Aggregation, cfg.dram, cfg.mac_lanes);

        // The pinned set — and therefore the probe plan — is a pure
        // function of the HDN list prefix actually pinned; its length
        // keys the cross-layer plan cache (`usize::MAX` = no caching, the
        // plan is then just the miss stream of the adjacency).
        let mut take_key = usize::MAX;
        if cfg.hdn_caching {
            pinned.reset(cache_rows, n);
            // Cluster prologue: fetch the HDN ID list, then pin the
            // corresponding RHS rows (Section V-C).
            let list = &workload.hdn_lists[ci];
            let take = list.len().min(cfg.hdn_id_entries).min(cache_rows);
            take_key = take;
            let ids = &list[..take];
            let id_done = ctx
                .dram
                .read(0, take as u64 * HDN_ID_BYTES, TrafficClass::HdnIdList);
            let fills = pinned.load(ids);
            let done =
                ctx.dram
                    .read_many(id_done, fills as u64, row_bytes, TrafficClass::RhsPreload);
            ctx.report.sram_writes_8b += fills as u64 * f_words;
            ctx.now = ctx.now.max(done);
        }

        // Replay: the cycle-accurate machinery consumes one shard's plan
        // at a time, strictly in range order — identical step for step to
        // a per-probe walk (hit runs issue as bulk MAC operations, which
        // is exact — see the module docs).
        let start = cluster.start;
        let mut burst = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut replay = |range: Range<usize>, buf: &PlanBuf, ctx: &mut PhaseCtx| {
            let mut op_cursor = 0usize;
            for (j, rp) in buf.rows.iter().enumerate() {
                let row = range.start + j;
                let i = row - start;
                // Window admission (in-order retirement).
                while window.len() >= cfg.runahead {
                    self.retire_ready(
                        window,
                        pending,
                        start,
                        ctx.now,
                        &mut ctx.dram,
                        f_out,
                        &mut ctx.report,
                    );
                    if window.len() < cfg.runahead {
                        break;
                    }
                    ctx.now = self.drain_one(
                        tables,
                        &mut ctx.mac,
                        pending,
                        start,
                        lru_dummy,
                        false,
                        ctx.now,
                        f_out,
                        &mut ctx.report,
                    );
                }

                // Stream this A row's CSR segment.
                let nnz = rp.nnz as u64;
                let stream = nnz * (ELEMENT_BYTES + INDEX_BYTES) + INDEX_BYTES;
                ctx.dram
                    .read_stream(ctx.now, stream, TrafficClass::LhsSparse);
                burst += stream;
                ctx.report.sram_writes_8b += stream.div_ceil(8);
                ctx.report.sram_reads_8b += stream.div_ceil(8);

                // Enter the window with an issue-in-progress token: stalls
                // while issuing this row's own non-zeros may drain some of
                // *its* waiters, so the pending counter must be live before
                // the first miss is registered (and the token keeps the row
                // from retiring before all its non-zeros are issued).
                window.push_back(row as u32);
                pending[i] = 1;
                for op in &buf.ops[op_cursor..op_cursor + rp.ops as usize] {
                    match *op {
                        PlanOp::Hits(count) => {
                            ctx.mac.scalar_vector_bulk(ctx.now, f_out, count as u64);
                            ctx.report.sram_reads_8b += count as u64 * f_words; // cached RHS rows
                            ctx.report.sram_writes_8b += count as u64 * f_words;
                            // O-BUF accumulate
                        }
                        PlanOp::Miss(k) => {
                            let waiter = Waiter {
                                output_row: row as u32,
                                lhs_value: 1.0,
                            };
                            loop {
                                match tables.issue(k, waiter) {
                                    IssueOutcome::Allocated => {
                                        let done = ctx.dram.read(
                                            ctx.now,
                                            row_bytes,
                                            TrafficClass::RhsRows,
                                        );
                                        tables.set_completion(k, done);
                                        pending[i] += 1;
                                        break;
                                    }
                                    IssueOutcome::Coalesced => {
                                        pending[i] += 1;
                                        break;
                                    }
                                    IssueOutcome::LdnFull | IssueOutcome::LhsFull => {
                                        ctx.now = self.drain_one(
                                            tables,
                                            &mut ctx.mac,
                                            pending,
                                            start,
                                            lru_dummy,
                                            false,
                                            ctx.now,
                                            f_out,
                                            &mut ctx.report,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                op_cursor += rp.ops as usize;
                // Release the issue token; the row can now retire once all
                // of its outstanding misses return.
                pending[i] -= 1;
                self.retire_ready(
                    window,
                    pending,
                    start,
                    ctx.now,
                    &mut ctx.dram,
                    f_out,
                    &mut ctx.report,
                );
            }
        };

        // Plan: a pure probe plan, either replayed from the layer-1 cache
        // (identical plan data, so identical replay) or produced fresh —
        // sharded across nnz-balanced row ranges and pipelined *ahead* of
        // the replay through the bounded-depth queue, whose ordered merge
        // concatenates to exactly the single-pass plan.
        let pinned_ref = cfg.hdn_caching.then_some(&*pinned);
        if let Some(cached) = cell.and_then(|c| c.get()).filter(|c| c.take == take_key) {
            replay(cluster.clone(), &cached.plan, &mut ctx);
            hits = cached.plan.hits;
            misses = cached.plan.misses;
        } else {
            let retain = cell.is_some();
            let ranges = plan::shard_ranges(Some(adjacency), cluster.clone(), spec, 1);
            plan::plan_replay(
                shard_pool,
                ranges,
                |range, buf| plan_rows(adjacency, range, pinned_ref, buf),
                |range, buf| {
                    replay(range, buf, &mut ctx);
                    hits += buf.hits;
                    misses += buf.misses;
                    if retain {
                        plan.absorb(buf);
                    }
                },
            );
            if let Some(cell) = cell {
                cell.set(CachedPlan {
                    take: take_key,
                    plan: std::mem::take(plan),
                })
                .ok();
            }
        }
        ctx.dram.round_burst(burst, TrafficClass::LhsSparse);

        // Drain the cluster before handing the channel to the next one.
        while !tables.is_empty() {
            ctx.now = self.drain_one(
                tables,
                &mut ctx.mac,
                pending,
                start,
                lru_dummy,
                false,
                ctx.now,
                f_out,
                &mut ctx.report,
            );
        }
        self.retire_ready(
            window,
            pending,
            start,
            ctx.now,
            &mut ctx.dram,
            f_out,
            &mut ctx.report,
        );
        debug_assert!(window.is_empty(), "all rows retire at cluster end");

        ctx.report.cache = if cfg.hdn_caching {
            CacheStats {
                hits,
                misses,
                fills: pinned.stats().fills,
            }
        } else {
            CacheStats::default()
        };
        ctx.finish_cluster()
    }

    /// Simulates one cluster under the demand-filled LRU replacement study
    /// (Section VIII). The caller passes the shared demand cache — probe
    /// outcomes depend on its evolving state, so this path stays a direct
    /// per-probe walk; the report's cache statistics are the cluster's
    /// delta.
    fn aggregate_cluster_lru(
        &self,
        workload: &PreparedWorkload,
        f_out: usize,
        cluster: Range<usize>,
        lru: &mut LruRowCache,
    ) -> PhaseReport {
        let cfg = &self.config;
        let adjacency = &workload.adjacency;
        let row_bytes = f_out as u64 * ELEMENT_BYTES;
        let f_words = f_out as u64;
        let lru_stats_before = *lru.stats();

        let mut ctx = PhaseCtx::new(PhaseKind::Aggregation, cfg.dram, cfg.mac_lanes);
        let mut tables = RunaheadTables::new(cfg.ldn_entries, cfg.lhs_id_entries);

        // Multi-row window: rows retire in order (Figure 15's
        // head/tail). Pending counters are cluster-local, indexed from
        // the cluster's first row.
        let start = cluster.start;
        let mut window: VecDeque<u32> = VecDeque::with_capacity(cfg.runahead);
        let mut pending: Vec<u32> = vec![0; cluster.len()];

        let mut burst = 0u64;
        for (i, slice) in adjacency.row_slices(cluster.clone()).enumerate() {
            let row = start + i;
            while window.len() >= cfg.runahead {
                self.retire_ready(
                    &mut window,
                    &mut pending,
                    start,
                    ctx.now,
                    &mut ctx.dram,
                    f_out,
                    &mut ctx.report,
                );
                if window.len() < cfg.runahead {
                    break;
                }
                ctx.now = self.drain_one(
                    &mut tables,
                    &mut ctx.mac,
                    &mut pending,
                    start,
                    lru,
                    true,
                    ctx.now,
                    f_out,
                    &mut ctx.report,
                );
            }

            let nnz = slice.len() as u64;
            let stream = nnz * (ELEMENT_BYTES + INDEX_BYTES) + INDEX_BYTES;
            ctx.dram
                .read_stream(ctx.now, stream, TrafficClass::LhsSparse);
            burst += stream;
            ctx.report.sram_writes_8b += stream.div_ceil(8);
            ctx.report.sram_reads_8b += stream.div_ceil(8);

            window.push_back(row as u32);
            pending[i] = 1;
            for &k in slice {
                let hit = cfg.hdn_caching && lru.probe(k);
                if hit {
                    ctx.mac.scalar_vector(ctx.now, f_out);
                    ctx.report.sram_reads_8b += f_words; // cached RHS row
                    ctx.report.sram_writes_8b += f_words; // O-BUF accumulate
                } else {
                    let waiter = Waiter {
                        output_row: row as u32,
                        lhs_value: 1.0,
                    };
                    loop {
                        match tables.issue(k, waiter) {
                            IssueOutcome::Allocated => {
                                let done = ctx.dram.read(ctx.now, row_bytes, TrafficClass::RhsRows);
                                tables.set_completion(k, done);
                                pending[i] += 1;
                                break;
                            }
                            IssueOutcome::Coalesced => {
                                pending[i] += 1;
                                break;
                            }
                            IssueOutcome::LdnFull | IssueOutcome::LhsFull => {
                                ctx.now = self.drain_one(
                                    &mut tables,
                                    &mut ctx.mac,
                                    &mut pending,
                                    start,
                                    lru,
                                    true,
                                    ctx.now,
                                    f_out,
                                    &mut ctx.report,
                                );
                            }
                        }
                    }
                }
            }
            pending[i] -= 1;
            self.retire_ready(
                &mut window,
                &mut pending,
                start,
                ctx.now,
                &mut ctx.dram,
                f_out,
                &mut ctx.report,
            );
        }
        ctx.dram.round_burst(burst, TrafficClass::LhsSparse);

        while !tables.is_empty() {
            ctx.now = self.drain_one(
                &mut tables,
                &mut ctx.mac,
                &mut pending,
                start,
                lru,
                true,
                ctx.now,
                f_out,
                &mut ctx.report,
            );
        }
        self.retire_ready(
            &mut window,
            &mut pending,
            start,
            ctx.now,
            &mut ctx.dram,
            f_out,
            &mut ctx.report,
        );
        debug_assert!(window.is_empty(), "all rows retire at cluster end");

        let after = *lru.stats();
        ctx.report.cache = CacheStats {
            hits: after.hits - lru_stats_before.hits,
            misses: after.misses - lru_stats_before.misses,
            fills: after.fills - lru_stats_before.fills,
        };
        ctx.finish_cluster()
    }

    /// Services the earliest outstanding RHS-row fetch: advances time,
    /// fires the waiting MACs, and (under LRU) installs the row.
    #[allow(clippy::too_many_arguments)]
    fn drain_one(
        &self,
        tables: &mut RunaheadTables,
        mac: &mut MacArray,
        pending: &mut [u32],
        cluster_start: usize,
        lru: &mut LruRowCache,
        use_lru: bool,
        now: Cycle,
        f_out: usize,
        report: &mut PhaseReport,
    ) -> Cycle {
        let Some((done, rhs, waiters)) = tables.pop_earliest_slice() else {
            return now;
        };
        let now = now.max(done);
        for w in waiters {
            mac.scalar_vector(now, f_out);
            report.sram_writes_8b += f_out as u64; // O-BUF accumulate
            let slot = &mut pending[w.output_row as usize - cluster_start];
            *slot = slot.saturating_sub(1);
        }
        if use_lru && self.config.hdn_caching {
            lru.insert(rhs);
            report.sram_writes_8b += f_out as u64;
        }
        now
    }

    /// Retires completed rows from the window head, writing their output
    /// rows back to DRAM (in-order retirement per Figure 15).
    #[allow(clippy::too_many_arguments)]
    fn retire_ready(
        &self,
        window: &mut VecDeque<u32>,
        pending: &mut [u32],
        cluster_start: usize,
        now: Cycle,
        dram: &mut Dram,
        f_out: usize,
        report: &mut PhaseReport,
    ) {
        while let Some(&front) = window.front() {
            if pending[front as usize - cluster_start] > 0 {
                break;
            }
            window.pop_front();
            dram.write(now, f_out as u64 * ELEMENT_BYTES, TrafficClass::Output);
            report.sram_reads_8b += f_out as u64; // O-BUF drain
        }
    }
}

impl Accelerator for GrowEngine {
    fn name(&self) -> &'static str {
        "GROW"
    }

    fn run(&self, workload: &PreparedWorkload) -> RunReport {
        // One scratch pool (and one shard-plan pool) per run: per-cluster
        // state is cleared between clusters and layers, not dropped.
        let scratch: ScratchArena<GrowScratch> = ScratchArena::new();
        let shard_pool: ScratchArena<PlanBuf> = ScratchArena::new();
        // Cross-layer plan retention: the aggregation probe plan depends
        // only on the adjacency and the pinned HDN prefix, so multi-layer
        // runs plan each cluster once and replay the retained plan at
        // later layers (keyed by the prefix length; a mismatch re-plans).
        // Capped by workload size so retained plans stay cheap; the LRU
        // study has no plans to retain. Inside a serving session pool the
        // slots instead come from the cross-job plan cache, so a later
        // job sharing the (dataset, partition) scope skips the plan pass
        // even on its first layer.
        let plan_gate = !matches!(self.config.replacement, ReplacementPolicy::Lru)
            && workload.adjacency.nnz() + 2 * workload.adjacency.rows() <= plan::PLAN_REUSE_MAX_OPS;
        // Fault-injected runs stay off the shared cache: replaying a
        // neighbor job's plan would skip this job's plan-pass trip
        // points, making injection counts depend on fleet warm state.
        let shared_plans = match &workload.plan_cache {
            Some(scope) if plan_gate && self.config.fault.is_off() => {
                Some(scope.slots::<CachedPlan>("grow", workload.clusters.len()))
            }
            _ => None,
        };
        let local_plans: Option<Vec<OnceLock<CachedPlan>>> =
            (shared_plans.is_none() && plan_gate && workload.layers.len() > 1).then(|| {
                (0..workload.clusters.len())
                    .map(|_| OnceLock::new())
                    .collect()
            });
        let plan_store: Option<&[OnceLock<CachedPlan>]> = shared_plans
            .as_deref()
            .map(Vec::as_slice)
            .or(local_plans.as_deref());
        let model = ExecModel::with_dram(self.config.multi_pe, self.config.dram);
        let mut report = pipeline::run_layers(self.name(), workload, self.config.fault, |layer| {
            LayerReport {
                combination: self.run_combination(
                    &model,
                    &layer.x.view(),
                    layer.f_out,
                    &workload.clusters,
                ),
                aggregation: self.run_aggregation(
                    &model,
                    workload,
                    layer.f_out,
                    &scratch,
                    &shard_pool,
                    plan_store,
                ),
            }
        });
        model.finalize(&mut report);
        report
    }

    fn sram_kb(&self) -> f64 {
        (self.config.hdn_cache_bytes
            + self.config.ibuf_sparse_bytes
            + self.config.obuf_bytes
            + self.config.hdn_id_entries as u64 * HDN_ID_BYTES) as f64
            / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, PartitionStrategy};
    use grow_model::DatasetKey;

    fn prepared(nodes: usize, strategy: PartitionStrategy) -> PreparedWorkload {
        let w = DatasetKey::Pubmed.spec().scaled_to(nodes).instantiate(3);
        prepare(&w, strategy, 4096)
    }

    #[test]
    fn run_produces_two_layers() {
        let p = prepared(500, PartitionStrategy::None);
        let r = GrowEngine::default().run(&p);
        assert_eq!(r.layers.len(), 2);
        assert!(r.total_cycles() > 0);
        assert!(r.dram_bytes() > 0);
    }

    #[test]
    fn mac_ops_match_workload_invariant() {
        // Combination: nnz(X) * f_out; aggregation: nnz(A) * f_out; summed
        // over both layers.
        let p = prepared(500, PartitionStrategy::None);
        let r = GrowEngine::default().run(&p);
        let a_nnz = p.adjacency.nnz() as u64;
        let expected: u64 = p
            .layers
            .iter()
            .map(|l| (l.x.nnz() as u64 + a_nnz) * l.f_out as u64)
            .sum();
        assert_eq!(r.mac_ops(), expected);
    }

    #[test]
    fn small_graph_cache_hit_rate_is_high() {
        // Section VII-A: for small graphs the HDN cache stashes nearly
        // everything (Cora hit rates ~80%+ even without partitioning).
        let p = prepared(400, PartitionStrategy::None);
        let r = GrowEngine::default().run(&p);
        let hr = r.aggregation_cache().hit_rate().unwrap();
        assert!(hr > 0.9, "hit rate {hr}");
    }

    #[test]
    fn hit_plus_miss_equals_adjacency_nnz() {
        let p = prepared(600, PartitionStrategy::None);
        let r = GrowEngine::default().run(&p);
        let c = r.aggregation_cache();
        assert_eq!(c.hits + c.misses, 2 * p.adjacency.nnz() as u64);
    }

    #[test]
    fn disabling_cache_increases_traffic() {
        let p = prepared(800, PartitionStrategy::None);
        let with = GrowEngine::default().run(&p);
        let without = GrowEngine::new(GrowConfig {
            hdn_caching: false,
            ..GrowConfig::default()
        })
        .run(&p);
        assert!(
            without.dram_bytes() > with.dram_bytes(),
            "no-cache {} vs cache {}",
            without.dram_bytes(),
            with.dram_bytes()
        );
        assert_eq!(
            without.mac_ops(),
            with.mac_ops(),
            "MACs are dataflow-invariant"
        );
    }

    #[test]
    fn runahead_reduces_cycles() {
        // Figure 25(a): 1-way vs 16-way runahead.
        let p = prepared(2000, PartitionStrategy::None);
        let narrow = GrowEngine::new(GrowConfig {
            runahead: 1,
            hdn_cache_bytes: 4 * 1024, // force misses
            hdn_id_entries: 32,
            ..GrowConfig::default()
        })
        .run(&p);
        let wide = GrowEngine::new(GrowConfig {
            runahead: 16,
            hdn_cache_bytes: 4 * 1024,
            hdn_id_entries: 32,
            ..GrowConfig::default()
        })
        .run(&p);
        assert!(
            wide.total_cycles() < narrow.total_cycles(),
            "16-way {} vs 1-way {}",
            wide.total_cycles(),
            narrow.total_cycles()
        );
    }

    #[test]
    fn output_traffic_is_exact() {
        let p = prepared(500, PartitionStrategy::None);
        let r = GrowEngine::default().run(&p);
        // Output: n rows per phase, f_out*8 useful bytes each, both phases
        // of both layers.
        let n = p.nodes as u64;
        let expected_useful: u64 = p.layers.iter().map(|l| 2 * n * l.f_out as u64 * 8).sum();
        assert_eq!(
            r.total_traffic().useful_bytes(TrafficClass::Output),
            expected_useful
        );
    }

    #[test]
    fn partitioned_run_covers_same_work() {
        let p0 = prepared(1500, PartitionStrategy::None);
        let p1 = prepared(1500, PartitionStrategy::Multilevel { cluster_nodes: 300 });
        let r0 = GrowEngine::default().run(&p0);
        let r1 = GrowEngine::default().run(&p1);
        assert_eq!(r0.mac_ops(), r1.mac_ops());
        let c0 = r0.aggregation_cache();
        let c1 = r1.aggregation_cache();
        assert_eq!(c0.hits + c0.misses, c1.hits + c1.misses);
    }

    #[test]
    fn lru_replacement_runs_and_reports() {
        let p = prepared(800, PartitionStrategy::None);
        let r = GrowEngine::new(GrowConfig {
            replacement: ReplacementPolicy::Lru,
            ..GrowConfig::default()
        })
        .run(&p);
        let c = r.aggregation_cache();
        assert!(c.hits + c.misses > 0);
        assert_eq!(
            r.total_traffic().fetched_bytes(TrafficClass::RhsPreload),
            0,
            "LRU mode does not preload"
        );
    }

    #[test]
    fn deterministic_runs() {
        let p = prepared(700, PartitionStrategy::None);
        let e = GrowEngine::default();
        assert_eq!(e.run(&p), e.run(&p));
    }

    #[test]
    fn parallel_clusters_match_serial_exactly() {
        // The headline property of the shared harness: fanning clusters
        // across threads must not change a single counter.
        let p = prepared(3000, PartitionStrategy::Multilevel { cluster_nodes: 250 });
        assert!(
            p.clusters.len() > 4,
            "needs real parallelism to be meaningful"
        );
        let e = GrowEngine::default();
        // Oversubscribe so threads really interleave, even on one core.
        let parallel = grow_sim::exec::with_workers(4, || e.run(&p));
        let serial = grow_sim::exec::with_mode(grow_sim::ExecMode::Serial, || e.run(&p));
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sharded_runs_are_bit_identical_to_unsharded() {
        // The shard_rows contract: splitting the probe-plan pass into row
        // ranges must not change a single counter, at any threshold, in
        // serial or parallel execution, with caching on or off.
        let p = prepared(2000, PartitionStrategy::None); // one 2000-row cluster
        for caching in [true, false] {
            let base = GrowEngine::new(GrowConfig {
                hdn_caching: caching,
                ..GrowConfig::default()
            })
            .run(&p);
            for shard_rows in [64, 257, 1000, 1999, 2000, 5000] {
                let cfg = GrowConfig {
                    hdn_caching: caching,
                    shard_rows: shard_rows.into(),
                    ..GrowConfig::default()
                };
                let e = GrowEngine::new(cfg);
                let sharded = grow_sim::exec::with_workers(4, || e.run(&p));
                assert_eq!(base, sharded, "caching={caching} shard_rows={shard_rows}");
                let serial = grow_sim::exec::with_mode(grow_sim::ExecMode::Serial, || e.run(&p));
                assert_eq!(base, serial, "serial shard caching={caching}");
            }
        }
    }

    #[test]
    fn sharding_composes_with_partitioned_clusters() {
        // Sharding inside clusters while clusters fan across threads.
        let p = prepared(2500, PartitionStrategy::Multilevel { cluster_nodes: 400 });
        let base = GrowEngine::default().run(&p);
        let sharded = GrowEngine::new(GrowConfig {
            shard_rows: ShardRows::Fixed(128),
            ..GrowConfig::default()
        })
        .run(&p);
        assert_eq!(base, sharded);
    }

    #[test]
    fn auto_sharding_is_bit_identical_and_derives_from_cluster_stats() {
        // One coarse 2000-row cluster: auto must turn sharding on, and —
        // like any threshold — must not change a single counter.
        let coarse = prepared(2000, PartitionStrategy::None);
        assert!(coarse.auto_shard_rows() > 0, "coarse grain shards");
        let base = GrowEngine::default().run(&coarse);
        let auto = GrowEngine::new(GrowConfig {
            shard_rows: ShardRows::Auto,
            ..GrowConfig::default()
        });
        assert_eq!(base, grow_sim::exec::with_workers(4, || auto.run(&coarse)));
        // Fine clusters already saturate the fan-out: auto stays off.
        let fine = prepared(1200, PartitionStrategy::Multilevel { cluster_nodes: 200 });
        assert_eq!(fine.auto_shard_rows(), 0, "fine grain leaves sharding off");
        assert_eq!(GrowEngine::default().run(&fine), auto.run(&fine));
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_across_runs() {
        // Back-to-back runs of one engine instance (fresh arenas per run)
        // and runs of different workloads through the same engine must not
        // influence each other.
        let small = prepared(500, PartitionStrategy::None);
        let big = prepared(1200, PartitionStrategy::Multilevel { cluster_nodes: 200 });
        let e = GrowEngine::default();
        let small_first = e.run(&small);
        let big_first = e.run(&big);
        assert_eq!(e.run(&small), small_first);
        assert_eq!(e.run(&big), big_first);
    }

    #[test]
    fn sram_capacity_matches_table3() {
        let kb = GrowEngine::default().sram_kb();
        assert!((kb - 538.0) < 1.0, "SRAM {kb} KB vs Table III's 538 KB");
    }

    #[test]
    fn request_overhead_ablation_favors_streaming() {
        // DESIGN.md §2.6: the per-request activation overhead penalizes
        // scattered fetches, not streams. Raising it must slow GROW less
        // (high hit rate => few random requests) than a cacheless GROW
        // (every non-zero is a random fetch).
        let p = prepared(2000, PartitionStrategy::None);
        let run = |overhead: u64, caching: bool| {
            let dram = grow_sim::DramConfig {
                request_overhead_cycles: overhead,
                ..grow_sim::DramConfig::default()
            };
            GrowEngine::new(GrowConfig {
                dram,
                hdn_caching: caching,
                ..GrowConfig::default()
            })
            .run(&p)
            .total_cycles() as f64
        };
        let cached_slowdown = run(48, true) / run(0, true);
        let uncached_slowdown = run(48, false) / run(0, false);
        assert!(
            uncached_slowdown > cached_slowdown,
            "cacheless {uncached_slowdown} vs cached {cached_slowdown}"
        );
    }
}
