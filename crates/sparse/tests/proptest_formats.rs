//! Property-based tests for format conversions and kernel equivalence.

use grow_sparse::{analysis, ops, CooMatrix, CsrMatrix, DenseMatrix, RowMajorSparse};
use proptest::prelude::*;

/// Strategy: a random sparse matrix as (rows, cols, triplets).
fn sparse_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..12, 1usize..12)
        .prop_flat_map(|(rows, cols)| {
            let triplet = (0..rows, 0..cols, -4.0f64..4.0);
            (Just(rows), Just(cols), proptest::collection::vec(triplet, 0..40))
        })
        .prop_map(|(rows, cols, triplets)| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in triplets {
                coo.push(r, c, v).expect("triplet within bounds");
            }
            coo.to_csr()
        })
}

fn dense_matrix(rows: usize) -> impl Strategy<Value = DenseMatrix> {
    (1usize..10).prop_flat_map(move |cols| {
        proptest::collection::vec(-4.0f64..4.0, rows * cols)
            .prop_map(move |data| DenseMatrix::from_row_major(rows, cols, data).expect("sized"))
    })
}

proptest! {
    #[test]
    fn csr_csc_round_trip(m in sparse_matrix()) {
        let back = m.to_csc().to_csr();
        prop_assert_eq!(&m, &back);
    }

    #[test]
    fn csr_dense_round_trip_preserves_values(m in sparse_matrix()) {
        // from_dense drops explicit zeros, so compare dense images instead
        // of the structures.
        let back = CsrMatrix::from_dense(&m.to_dense());
        prop_assert!(back.to_dense().approx_eq(&m.to_dense(), 0.0));
        prop_assert!(back.nnz() <= m.nnz());
    }

    #[test]
    fn transpose_is_involution(m in sparse_matrix()) {
        prop_assert_eq!(&m, &m.transpose().transpose());
    }

    #[test]
    fn transpose_preserves_nnz_and_flips_shape(m in sparse_matrix()) {
        let t = m.transpose();
        prop_assert_eq!(t.nnz(), m.nnz());
        prop_assert_eq!(t.shape(), (m.cols(), m.rows()));
    }

    #[test]
    fn spmm_agrees_with_dense_gemm(
        (a, b) in sparse_matrix().prop_flat_map(|a| {
            let k = a.cols();
            (Just(a), dense_matrix(k))
        })
    ) {
        let sparse = ops::spmm(&a, &b).expect("shapes agree");
        let dense = ops::gemm(&a.to_dense(), &b).expect("shapes agree");
        prop_assert!(sparse.approx_eq(&dense, 1e-9));
    }

    #[test]
    fn row_wise_and_outer_product_dataflows_agree(
        (a, b) in sparse_matrix().prop_flat_map(|a| {
            let k = a.cols();
            (Just(a), dense_matrix(k))
        })
    ) {
        // Figure 9 of the paper: both dataflows compute the same GEMM.
        let row_wise = ops::spmm(&a, &b).expect("shapes agree");
        let outer = ops::spmm_outer(&a, &b).expect("shapes agree");
        prop_assert!(row_wise.approx_eq(&outer, 1e-9));
    }

    #[test]
    fn permute_symmetric_preserves_spectrum_sample(m in sparse_matrix()) {
        // Use a square submatrix; permuting rows+cols by the same permutation
        // preserves nnz and the multiset of values.
        let n = m.rows().min(m.cols());
        let dense = m.to_dense();
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                let v = dense.get(r, c);
                if v != 0.0 {
                    coo.push(r, c, v).expect("in bounds");
                }
            }
        }
        let sq = coo.to_csr();
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let p = sq.permute_symmetric(&perm);
        prop_assert_eq!(p.nnz(), sq.nnz());
        let mut orig: Vec<u64> = sq.values().iter().map(|v| v.to_bits()).collect();
        let mut permuted: Vec<u64> = p.values().iter().map(|v| v.to_bits()).collect();
        orig.sort_unstable();
        permuted.sort_unstable();
        prop_assert_eq!(orig, permuted);
    }

    #[test]
    fn tile_histogram_conserves_nnz_lower_bound(m in sparse_matrix()) {
        // Non-empty tiles can hold at most tile_rows*tile_cols nnz, so the
        // tile count must be >= nnz / tile_area and the histogram fractions
        // sum to 1.
        let p = m.pattern();
        let view = RowMajorSparse::from(p);
        let h = analysis::tile_nnz_histogram(&view, 2, 2, &[1, 2]);
        let total: u64 = h.counts.iter().sum();
        prop_assert_eq!(total, h.nonempty_tiles);
        if p.nnz() > 0 {
            prop_assert!(h.nonempty_tiles as usize >= p.nnz().div_ceil(4));
            prop_assert!(h.nonempty_tiles as usize <= p.nnz());
        } else {
            prop_assert_eq!(h.nonempty_tiles, 0);
        }
    }

    #[test]
    fn mac_counts_a_xw_is_exact(m in sparse_matrix()) {
        // nnz-based count for A*(X*W) must equal (nnz(A) + nnz(X)) * f_out.
        let n = m.cols();
        let x = RowMajorSparse::Dense { rows: n, cols: 7 };
        let counts = analysis::gcn_mac_counts(m.pattern(), &x, 3);
        prop_assert_eq!(counts.a_xw, ((n * 7) as u64 + m.nnz() as u64) * 3);
    }
}
