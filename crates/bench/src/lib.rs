//! Benchmark-harness support: plain-text table rendering, CSV emission,
//! and the shared experiment context used by the `experiments` binary and
//! the Criterion benches.
//!
//! Results are written both to stdout (aligned tables mirroring the
//! paper's figures) and to `results/<experiment>.csv` for archival; no
//! external serialization crates are needed for either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use grow_core::experiments::DatasetEval;
use grow_model::{DatasetKey, DatasetSpec};

/// A simple aligned table with CSV export.
///
/// ```
/// use grow_bench::Table;
///
/// let mut t = Table::new("demo", &["dataset", "speedup"]);
/// t.row(&["cora".into(), "2.31".into()]);
/// assert!(t.render().contains("cora"));
/// assert_eq!(t.to_csv(), "dataset,speedup\ncora,2.31\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// The table name (used for the CSV file name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Serializes as CSV (header line + rows; cells containing commas are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV into `dir/<name>.csv` (directory created if needed).
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.name)), self.to_csv())
    }

    /// Serializes as JSON: an object with the table name and one object per
    /// row, keyed by column header. All cells stay strings — they are
    /// already formatted for presentation; downstream tooling parses the
    /// ones it needs.
    ///
    /// ```
    /// use grow_bench::Table;
    ///
    /// let mut t = Table::new("demo", &["dataset", "speedup"]);
    /// t.row(&["cora".into(), "2.31".into()]);
    /// assert_eq!(
    ///     t.to_json(),
    ///     "{\"name\":\"demo\",\"rows\":[{\"dataset\":\"cora\",\"speedup\":\"2.31\"}]}"
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let fields: Vec<(&str, String)> = self
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, c)| (h.as_str(), json::string(c)))
                    .collect();
                json::object(&fields)
            })
            .collect();
        json::object(&[
            ("name", json::string(&self.name)),
            ("rows", json::array(rows)),
        ])
    }

    /// Writes the JSON into `dir/<name>.json` (directory created if needed).
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.json", self.name)), self.to_json())
    }
}

/// Minimal JSON construction (no external serialization crates in the
/// offline build). Values are pre-rendered strings produced by the helpers
/// here, composed into objects and arrays.
pub mod json {
    /// Escapes and quotes a string value.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders an unsigned integer exactly (no f64 round-trip — u64 values
    /// above 2^53 would lose precision through [`number`]).
    pub fn uint(v: u64) -> String {
        v.to_string()
    }

    /// Renders a boolean.
    pub fn boolean(v: bool) -> String {
        if v { "true" } else { "false" }.to_string()
    }

    /// Renders a finite number (JSON has no NaN/inf; those become `null`).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            // Integral values print without a trailing ".0" noise.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            }
        } else {
            "null".to_string()
        }
    }

    /// Composes pre-rendered values into an object.
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", string(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Composes pre-rendered values into an array.
    pub fn array(items: Vec<String>) -> String {
        format!("[{}]", items.join(","))
    }
}

/// Numeric cell helpers used across experiment printers.
pub mod cell {
    /// Formats a ratio with two decimals (`"2.83"`).
    pub fn ratio(v: f64) -> String {
        format!("{v:.2}")
    }

    /// Formats a fraction as a percentage (`"79.1%"`).
    pub fn percent(v: f64) -> String {
        format!("{:.1}%", 100.0 * v)
    }

    /// Formats a byte count in mebibytes.
    pub fn mib(bytes: u64) -> String {
        format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
    }

    /// Formats a large count with engineering notation.
    pub fn count(v: u64) -> String {
        if v >= 1_000_000_000 {
            format!("{:.2}G", v as f64 / 1e9)
        } else if v >= 1_000_000 {
            format!("{:.2}M", v as f64 / 1e6)
        } else if v >= 10_000 {
            format!("{:.1}K", v as f64 / 1e3)
        } else {
            v.to_string()
        }
    }
}

/// Wall-clock measurement shared by the offline (no-Criterion) benches.
pub mod timing {
    use std::time::Instant;

    /// One benchmark entry's measurements, in nanoseconds per iteration.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Timing {
        /// Iterations measured (after the warm-up run).
        pub iters: u32,
        /// Mean time per iteration.
        pub mean_ns: f64,
        /// Fastest single iteration.
        pub min_ns: f64,
    }

    impl Timing {
        /// Fastest iteration in seconds.
        pub fn min_secs(&self) -> f64 {
            self.min_ns / 1e9
        }
    }

    /// Runs `f` once to warm up, then `iters` timed times.
    pub fn sample(iters: u32, mut f: impl FnMut()) -> Timing {
        f(); // warm-up: keep the cold first run out of the measurements
        let mut min_ns = f64::INFINITY;
        let mut total_ns = 0.0;
        for _ in 0..iters.max(1) {
            let t0 = Instant::now();
            f();
            let ns = t0.elapsed().as_nanos() as f64;
            min_ns = min_ns.min(ns);
            total_ns += ns;
        }
        Timing {
            iters: iters.max(1),
            mean_ns: total_ns / iters.max(1) as f64,
            min_ns,
        }
    }
}

/// The shared experiment context: dataset selection, seed, scaling, and
/// lazily instantiated [`DatasetEval`]s (generation + partitioning are the
/// expensive parts and are reused across experiments).
pub struct Context {
    /// Selected datasets.
    pub keys: Vec<DatasetKey>,
    /// Generation seed.
    pub seed: u64,
    /// Optional node-count override (CI-scale smoke runs).
    pub max_nodes: Option<usize>,
    /// Use the paper's unscaled node counts.
    pub full_scale: bool,
    /// Banked-memory channel count for the e2e experiments (`channels=`
    /// override; 1 = the uniform fluid pipe).
    pub channels: usize,
    /// Per-channel bank count for the e2e experiments (`banks=`
    /// override).
    pub banks: usize,
    /// Worker-pool size for the async-serving experiments
    /// (`AsyncConfig::workers`; 1 = the historical single-worker drain).
    pub workers: usize,
    evals: Vec<Option<DatasetEval>>,
}

impl Context {
    /// Creates a context over the given datasets.
    pub fn new(keys: Vec<DatasetKey>, seed: u64) -> Self {
        let n = keys.len();
        Context {
            keys,
            seed,
            max_nodes: None,
            full_scale: false,
            channels: 1,
            banks: 1,
            workers: 1,
            evals: vec![None; n],
        }
    }

    /// The scaled [`DatasetSpec`] for dataset `i` — the same scaling
    /// [`Context::eval`] applies, without instantiating the workload.
    /// Batch-service jobs are defined in terms of these specs.
    pub fn spec(&self, i: usize) -> DatasetSpec {
        let mut spec = self.keys[i].spec();
        if self.full_scale {
            spec = spec.paper_scale();
        }
        if let Some(cap) = self.max_nodes {
            if spec.nodes > cap {
                spec = spec.scaled_to(cap);
            }
        }
        spec
    }

    /// The evaluation for dataset `i`, instantiating it on first use.
    pub fn eval(&mut self, i: usize) -> &DatasetEval {
        if self.evals[i].is_none() {
            let spec = self.spec(i);
            eprintln!(
                "[setup] instantiating {} ({} nodes) ...",
                spec.key.name(),
                spec.nodes
            );
            self.evals[i] = Some(DatasetEval::from_spec(spec, self.seed));
        }
        self.evals[i].as_ref().expect("just instantiated")
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no datasets were selected.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("x", &["a", "longer"]);
        t.row(&["1".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("== x =="));
        assert!(text.contains("longer"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["v,w".into()]);
        assert!(t.to_csv().contains("\"v,w\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn cells_format() {
        assert_eq!(cell::ratio(2.834), "2.83");
        assert_eq!(cell::percent(0.791), "79.1%");
        assert_eq!(cell::count(1234), "1234");
        assert_eq!(cell::count(2_500_000), "2.50M");
    }

    #[test]
    fn context_lazily_instantiates() {
        let mut ctx = Context::new(vec![DatasetKey::Cora], 1);
        ctx.max_nodes = Some(200);
        let eval = ctx.eval(0);
        assert!(eval.workload.graph.nodes() <= 200);
    }
}
