//! [`SimSession`] — the one-stop driver for simulating workloads on the
//! registered engines.
//!
//! The implementation lives in [`grow_serve::session`] (re-exported here
//! unchanged) so the batch service in [`crate::serve`] can build on it: a
//! session owns one instantiated GCN workload and memoizes its prepared
//! (partitioned/relabeled) forms; engines are dispatched by name through
//! the [`grow_core::registry`](crate::accel::registry).
//!
//! ```
//! use grow::session::SimSession;
//! use grow::accel::PartitionStrategy;
//! use grow::model::DatasetKey;
//!
//! let mut session = SimSession::from_spec(DatasetKey::Cora.spec().scaled_to(400), 42);
//! let grow = session.run("grow", PartitionStrategy::multilevel_default()).unwrap();
//! let gcnax = session.run("gcnax", PartitionStrategy::None).unwrap();
//! assert_eq!(grow.mac_ops(), gcnax.mac_ops(), "same work, different movement");
//! ```

pub use grow_serve::session::*;
