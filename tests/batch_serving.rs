//! Acceptance and concurrency tests for the `grow_serve` batch layer.
//!
//! The two load-bearing properties:
//!
//! * a mixed batch (all four engines, multiple partition strategies,
//!   overrides, an intentionally invalid job) completes with per-job
//!   statuses and reports **bit-identical** between a forced-serial run
//!   and an oversubscribed 8-worker run;
//! * duplicate job keys are computed exactly once — the result cache
//!   serves every repeat, under parallel execution too.

use grow::accel::registry::RegistryError;
use grow::accel::{PartitionStrategy, SchedulerKind};
use grow::model::DatasetKey;
use grow::serve::{scheduler_grid_jobs, BatchService, JobError, JobResult, JobSpec};
use grow::sim::exec::{with_mode, with_workers, ExecMode};

/// Oversubscribed worker count (the in-code equivalent of
/// `GROW_THREADS=8`), so threads genuinely interleave even on small CI
/// machines.
const WORKERS: usize = 8;

/// A mixed batch of 18 jobs: 2 datasets x 4 engines x 2 partition
/// strategies, one override variant, and one invalid job.
fn mixed_jobs() -> Vec<JobSpec> {
    let cora = DatasetKey::Cora.spec().scaled_to(600);
    let pubmed = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategies = [
        PartitionStrategy::None,
        PartitionStrategy::Multilevel { cluster_nodes: 150 },
    ];
    let mut jobs = Vec::new();
    for spec in [cora, pubmed] {
        for engine in ["grow", "gcnax", "matraptor", "gamma"] {
            for strategy in strategies {
                jobs.push(JobSpec::new(spec, 21, engine).with_strategy(strategy));
            }
        }
    }
    jobs.push(
        JobSpec::new(cora, 21, "grow")
            .with_strategy(strategies[1])
            .with_override("hdn_cache_kb", "64")
            .with_override("runahead", "4"),
    );
    // The multi-PE scheduler axis rides through the same override path.
    jobs.push(
        JobSpec::new(cora, 21, "grow")
            .with_strategy(strategies[1])
            .with_scheduler(SchedulerKind::WorkStealing)
            .with_pes(8),
    );
    // The intentionally invalid job: fails alone, not the batch.
    jobs.push(JobSpec::new(pubmed, 21, "npu"));
    assert!(jobs.len() >= 16, "acceptance floor: {} jobs", jobs.len());
    jobs
}

fn outcomes(results: &[JobResult]) -> Vec<&Result<grow::accel::RunReport, JobError>> {
    results.iter().map(|r| &r.outcome).collect()
}

#[test]
fn mixed_batch_is_bit_identical_serial_vs_parallel() {
    let jobs = mixed_jobs();
    let serial = with_mode(ExecMode::Serial, || BatchService::new().run_batch(&jobs));
    let parallel = with_workers(WORKERS, || BatchService::new().run_batch(&jobs));

    assert_eq!(serial.len(), jobs.len());
    assert_eq!(parallel.len(), jobs.len());
    // Every job has a status, in submission order, under both modes.
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.index, i);
        assert_eq!(p.index, i);
        assert_eq!(
            s.outcome, p.outcome,
            "job {i} ({} on {}) diverged between serial and parallel",
            s.engine, s.dataset
        );
    }
    // The invalid job failed with the documented error; everything else ran.
    let failures: Vec<usize> = serial
        .iter()
        .filter(|r| r.outcome.is_err())
        .map(|r| r.index)
        .collect();
    assert_eq!(failures, [jobs.len() - 1]);
    assert_eq!(
        serial.last().unwrap().outcome,
        Err(JobError::Invalid(RegistryError::UnknownEngine(
            "npu".into()
        )))
    );
}

#[test]
fn repeated_parallel_batches_are_stable() {
    // Thread scheduling varies between runs; batch results must not.
    let jobs = mixed_jobs();
    let first = with_workers(WORKERS, || BatchService::new().run_batch(&jobs));
    for _ in 0..2 {
        let again = with_workers(WORKERS, || BatchService::new().run_batch(&jobs));
        assert_eq!(outcomes(&first), outcomes(&again));
    }
}

#[test]
fn duplicate_keys_compute_once_under_parallel_execution() {
    let spec = DatasetKey::Citeseer.spec().scaled_to(700);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    // 12 jobs, but only 3 distinct keys (engine case and override order
    // do not affect the key).
    let a = JobSpec::new(spec, 4, "grow").with_strategy(strategy);
    let a_alias = JobSpec::new(spec, 4, "GROW").with_strategy(strategy);
    let b = JobSpec::new(spec, 4, "gcnax");
    let c = JobSpec::new(spec, 4, "grow")
        .with_override("runahead", "4")
        .with_override("hdn_cache_kb", "128");
    let c_alias = JobSpec::new(spec, 4, "grow")
        .with_override("hdn_cache_kb", "128")
        .with_override("runahead", "4");
    let batch = vec![
        a.clone(),
        b.clone(),
        c.clone(),
        a_alias.clone(),
        c_alias.clone(),
        a.clone(),
        b.clone(),
        c.clone(),
        a_alias,
        c_alias,
        a.clone(),
        b.clone(),
    ];

    let (parallel_results, stats) = with_workers(WORKERS, || {
        let mut service = BatchService::new();
        let results = service.run_batch(&batch);
        (results, service.stats())
    });
    assert_eq!(
        stats.simulations_run, 3,
        "exactly one computation per distinct key"
    );
    assert_eq!(stats.cache_hits, batch.len() as u64 - 3);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.sessions_created, 1, "one workload recipe");
    assert_eq!(stats.preparations_run, 2, "two distinct strategies");

    // The non-computing duplicates are flagged as cache hits and carry
    // the exact report of their key's one computation.
    let computed: Vec<usize> = parallel_results
        .iter()
        .filter(|r| !r.cache_hit)
        .map(|r| r.index)
        .collect();
    assert_eq!(computed, [0, 1, 2]);
    for r in &parallel_results {
        let original = &parallel_results[match r.index {
            i if batch[i].key() == batch[0].key() => 0,
            i if batch[i].key() == batch[1].key() => 1,
            _ => 2,
        }];
        assert_eq!(r.outcome, original.outcome, "job {}", r.index);
    }

    // Bit-identical to a forced-serial service run.
    let serial_results = with_mode(ExecMode::Serial, || BatchService::new().run_batch(&batch));
    assert_eq!(outcomes(&parallel_results), outcomes(&serial_results));
}

#[test]
fn scheduler_axis_flows_through_the_batch_service() {
    // The figure24-style sweep: one engine, the scheduler × PE grid, plus
    // one job with a bogus scheduler — which must fail alone with the
    // dedicated error while the whole grid still runs.
    let spec = DatasetKey::Cora.spec().scaled_to(600);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let mut jobs = scheduler_grid_jobs(&[spec], 21, "grow", strategy, &SchedulerKind::ALL, &[2, 8]);
    jobs.push(
        JobSpec::new(spec, 21, "grow")
            .with_strategy(strategy)
            .with_override("scheduler", "bogus"),
    );

    let mut service = BatchService::new();
    let results = with_workers(WORKERS, || service.run_batch(&jobs));
    assert_eq!(
        results.last().unwrap().outcome,
        Err(JobError::Invalid(RegistryError::UnknownScheduler(
            "bogus".into()
        )))
    );
    assert_eq!(service.stats().jobs_failed, 1);
    assert_eq!(service.stats().simulations_run, 8, "the grid all ran");

    // Scheduling is post-hoc: every grid report carries identical phase
    // counters and differs only in its multi-PE summary; at each PE count
    // work-stealing's makespan never exceeds round-robin's.
    let reports: Vec<_> = results[..8]
        .iter()
        .map(|r| r.report().expect("grid jobs are valid"))
        .collect();
    for r in &reports {
        assert_eq!(r.layers, reports[0].layers, "phase counters shifted");
    }
    for pes_group in reports.chunks(4) {
        let summary = |i: usize| pes_group[i].multi_pe.as_ref().expect("summary");
        assert_eq!(
            [
                summary(0).scheduler,
                summary(1).scheduler,
                summary(2).scheduler,
                summary(3).scheduler
            ],
            ["rr", "lpt", "ws", "ca"]
        );
        assert!(
            summary(2).makespan <= summary(0).makespan * (1.0 + 1e-9),
            "ws {} vs rr {}",
            summary(2).makespan,
            summary(0).makespan
        );
    }

    // And the whole scheduler batch is mode-invariant.
    let serial = with_mode(ExecMode::Serial, || BatchService::new().run_batch(&jobs));
    assert_eq!(outcomes(&results), outcomes(&serial));
}

#[test]
fn cache_persists_across_batches() {
    let jobs = mixed_jobs();
    let mut service = BatchService::new();
    let first = with_workers(WORKERS, || service.run_batch(&jobs));
    let sims_after_first = service.stats().simulations_run;
    assert_eq!(
        sims_after_first,
        jobs.len() as u64 - 1,
        "one job is invalid"
    );

    let second = with_workers(WORKERS, || service.run_batch(&jobs));
    assert_eq!(
        service.stats().simulations_run,
        sims_after_first,
        "resubmission is pure cache"
    );
    assert!(second
        .iter()
        .filter(|r| r.outcome.is_ok())
        .all(|r| r.cache_hit));
    assert_eq!(outcomes(&first), outcomes(&second));
}
