//! Label-propagation clustering: a near-linear-time alternative to the
//! multilevel partitioner for very large graphs.
//!
//! The paper's preprocessing cost "ranges from tens of milliseconds to
//! several tens of minutes" with METIS; label propagation trades a little
//! cut quality for an order of magnitude less preprocessing time, which
//! matters for the biggest Table I surrogates on a single core.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grow_graph::Graph;

use crate::Partitioning;

/// Tuning knobs of [`label_propagation_partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelPropagationConfig {
    /// RNG seed for the node visit order.
    pub seed: u64,
    /// Maximum propagation sweeps.
    pub max_iterations: usize,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        LabelPropagationConfig {
            seed: 0x6c70,
            max_iterations: 8,
        }
    }
}

/// Clusters `graph` by label propagation, then packs the discovered
/// communities into `parts` groups of near-equal node count.
///
/// Communities larger than one pack are split; packs are filled first-fit
/// in decreasing community size, which keeps most communities intact, so
/// intra-pack edge locality tracks the community structure.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn label_propagation_partition(
    graph: &Graph,
    parts: usize,
    config: &LabelPropagationConfig,
) -> Partitioning {
    assert!(parts > 0, "parts must be positive");
    let n = graph.nodes();
    if parts == 1 || n == 0 {
        return Partitioning::single(n);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Scratch for counting neighbor labels.
    let mut count: Vec<u32> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..config.max_iterations {
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut changed = 0usize;
        for &v in &order {
            let v = v as usize;
            if graph.degree(v) == 0 {
                continue;
            }
            for &u in graph.neighbors(v) {
                let l = labels[u as usize];
                if count[l as usize] == 0 {
                    touched.push(l);
                }
                count[l as usize] += 1;
            }
            let mut best = labels[v];
            let mut best_count = 0u32;
            for &l in &touched {
                let c = count[l as usize];
                // Deterministic tie-break on the smaller label keeps runs
                // reproducible for a fixed seed.
                if c > best_count || (c == best_count && l < best) {
                    best = l;
                    best_count = c;
                }
                count[l as usize] = 0;
            }
            touched.clear();
            if best != labels[v] {
                labels[v] = best;
                changed += 1;
            }
        }
        if changed * 100 < n {
            break;
        }
    }

    // Compact labels into community IDs and measure sizes.
    let mut remap = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    for l in &mut labels {
        let r = &mut remap[*l as usize];
        if *r == u32::MAX {
            *r = sizes.len() as u32;
            sizes.push(0);
        }
        *l = *r;
        sizes[*l as usize] += 1;
    }

    // Pack communities into `parts` bins, biggest first; communities that
    // overflow a bin spill into the next (splitting them by membership
    // order, which is arbitrary but rare for well-separated communities).
    // Each (bin, take) quota is recorded exactly so the member-assignment
    // pass below reproduces this packing bin-for-bin regardless of the
    // order it visits communities in.
    let capacity = n.div_ceil(parts);
    let mut community_order: Vec<u32> = (0..sizes.len() as u32).collect();
    community_order.sort_unstable_by_key(|&c| std::cmp::Reverse(sizes[c as usize]));
    let mut community_part: Vec<Vec<(u32, usize)>> = vec![Vec::new(); sizes.len()];
    let mut fill = vec![0usize; parts];
    let mut bin = 0usize;
    for &c in &community_order {
        let mut remaining = sizes[c as usize];
        while remaining > 0 {
            let free = capacity - fill[bin];
            let take = remaining.min(free);
            if take > 0 {
                community_part[c as usize].push((bin as u32, take));
                fill[bin] += take;
                remaining -= take;
            }
            if fill[bin] >= capacity && bin + 1 < parts {
                bin += 1;
            } else if take == 0 {
                // All bins ahead are full; wrap (cannot happen when
                // capacity * parts >= n, kept for safety).
                bin = (bin + 1) % parts;
            }
        }
    }

    // Assign members: walk nodes per community and spread across that
    // community's bins per the exact quotas recorded above.
    let mut assignment = vec![0u32; n];
    // Members grouped by community.
    let mut starts = vec![0usize; sizes.len() + 1];
    for &l in &labels {
        starts[l as usize + 1] += 1;
    }
    for c in 0..sizes.len() {
        starts[c + 1] += starts[c];
    }
    let mut members = vec![0u32; n];
    let mut cursor = starts.clone();
    for v in 0..n {
        members[cursor[labels[v] as usize]] = v as u32;
        cursor[labels[v] as usize] += 1;
    }
    for c in 0..sizes.len() {
        let mut quotas = community_part[c].iter().copied();
        let (mut b, mut quota) = quotas.next().unwrap_or((0, 0));
        for &v in &members[starts[c]..starts[c + 1]] {
            while quota == 0 {
                match quotas.next() {
                    Some((nb, nq)) => (b, quota) = (nb, nq),
                    // Quotas sum to the community size by construction;
                    // stay on the last bin if that invariant ever breaks.
                    None => quota = usize::MAX,
                }
            }
            assignment[v as usize] = b;
            quota -= 1;
        }
    }
    Partitioning::new(assignment, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grow_graph::CommunityGraphSpec;

    #[test]
    fn detects_two_cliques() {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
                edges.push((a + 6, b + 6));
            }
        }
        edges.push((0, 6));
        let g = Graph::from_edges(12, edges);
        let p = label_propagation_partition(&g, 2, &LabelPropagationConfig::default());
        assert!(p.edge_cut(&g) <= 2, "cut = {}", p.edge_cut(&g));
    }

    #[test]
    fn keeps_parts_balanced() {
        let spec = CommunityGraphSpec {
            nodes: 2000,
            avg_degree: 10.0,
            communities: 16,
            intra_fraction: 0.9,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        };
        let g = spec.generate(5);
        let p = label_propagation_partition(&g, 8, &LabelPropagationConfig::default());
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 2000);
        assert!(p.balance() <= 1.3, "balance {}", p.balance());
    }

    #[test]
    fn improves_locality_on_community_graphs() {
        let spec = CommunityGraphSpec {
            nodes: 3000,
            avg_degree: 12.0,
            communities: 12,
            intra_fraction: 0.9,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        };
        let g = spec.generate(7);
        let p = label_propagation_partition(&g, 12, &LabelPropagationConfig::default());
        let frac = p.intra_edge_fraction(&g);
        // Random assignment would give ~1/12 = 0.083.
        assert!(frac > 0.4, "intra fraction {frac}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = CommunityGraphSpec {
            nodes: 800,
            avg_degree: 8.0,
            communities: 8,
            intra_fraction: 0.85,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        };
        let g = spec.generate(9);
        let cfg = LabelPropagationConfig::default();
        assert_eq!(
            label_propagation_partition(&g, 6, &cfg),
            label_propagation_partition(&g, 6, &cfg)
        );
    }

    #[test]
    fn single_part_short_circuits() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let p = label_propagation_partition(&g, 1, &LabelPropagationConfig::default());
        assert_eq!(p.parts(), 1);
    }
}
