//! The workspace-wide plan/replay execution idiom.
//!
//! PR 4 split GROW's aggregation into a *plan* pass (a pure function of
//! the workload: which probes hit, which rows fetch) and a *replay* pass
//! (the cycle-accurate machinery consuming that plan in order). This
//! module generalizes the split into a reusable driver every engine
//! shares, in the spirit of NeuraChip's decoupled "what will the memory
//! system do" / "when does it happen" stages:
//!
//! * [`PlanBuffer`] — the plan-pass output contract: a clearable,
//!   poolable buffer whose ordered concatenation over row ranges equals
//!   the single-pass plan.
//! * [`shard_ranges`] — deterministic row-range shard boundaries, either
//!   fixed-size or *nnz-balanced* (degree-aware, à la Accel-GCN's
//!   warp-balanced row partitioning): cuts fall where the cumulative
//!   non-zero count crosses equal shares, so skewed rows do not serialize
//!   one shard. Boundaries optionally align to a strip grain (GCNAX's
//!   `tile_rows`).
//! * [`plan_replay`] / [`plan_replay_seq`] — the ordered-merge drivers:
//!   plan shards are produced ahead (in parallel for pure passes, on one
//!   dedicated thread for stateful scans) through a bounded-depth queue
//!   while the calling thread replays them strictly in range order. Under
//!   `GROW_SERIAL=1` (or one worker) this degrades to the exact serial
//!   interleaving, so results are bit-identical by construction.
//!
//! Two plan-pass classes exist and the drivers mirror them: *pure
//! per-row-range* passes (GROW's probe plan, GCNAX's strip counting,
//! MatRaptor's cacheless row accounting) shard AND overlap; *sequential
//! scans* (GAMMA's fiber-cache walk, whose per-probe outcome depends on
//! all prior probes) cannot shard but still overlap with replay via
//! [`plan_replay_seq`].

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use grow_sim::{exec, ScratchArena};
use grow_sparse::CsrPattern;

use crate::PreparedWorkload;

/// Intra-cluster row-range sharding threshold of the engines' plan
/// passes (the uniform `shard_rows=` override). Sharding is purely a
/// simulator-throughput knob: merged results are bit-identical to an
/// unsharded run at any setting, for every engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardRows {
    /// No intra-cluster sharding (the default).
    #[default]
    Off,
    /// Shard clusters with more rows than this into ranges of this many
    /// rows.
    Fixed(usize),
    /// Derive the threshold from the prepared workload's cluster-size
    /// statistics ([`PreparedWorkload::auto_shard_rows`]): coarse-grained
    /// preparations (few huge clusters, e.g. Reddit's 4096-node grain)
    /// shard at roughly an eighth of the largest cluster; fine-grained
    /// ones, where the cluster fan-out already saturates the workers,
    /// leave sharding off. Auto shards are *nnz-balanced*: boundaries
    /// follow the degree distribution instead of fixed row counts.
    Auto,
}

impl ShardRows {
    /// The effective row threshold for `workload` (0 = sharding off).
    pub fn resolve(&self, workload: &PreparedWorkload) -> usize {
        match self {
            ShardRows::Off => 0,
            ShardRows::Fixed(rows) => *rows,
            ShardRows::Auto => workload.auto_shard_rows(),
        }
    }

    /// The full sharding specification for `workload`: the resolved
    /// threshold plus whether boundaries are nnz-balanced (`Auto`) or
    /// fixed-size (`Fixed`, the legacy encoding).
    pub fn spec(&self, workload: &PreparedWorkload) -> ShardSpec {
        ShardSpec {
            threshold: self.resolve(workload),
            balanced: matches!(self, ShardRows::Auto),
        }
    }
}

impl From<usize> for ShardRows {
    /// `0` disables sharding (the legacy encoding); any other value is a
    /// fixed threshold.
    fn from(rows: usize) -> Self {
        if rows == 0 {
            ShardRows::Off
        } else {
            ShardRows::Fixed(rows)
        }
    }
}

/// A resolved sharding policy: the row threshold (0 = off) and whether
/// shard boundaries balance non-zeros rather than rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Clusters with more rows than this split into shards.
    pub threshold: usize,
    /// Place boundaries where cumulative nnz crosses equal shares
    /// (degree-aware) instead of at fixed row counts.
    pub balanced: bool,
}

impl ShardSpec {
    /// Sharding disabled.
    pub const OFF: ShardSpec = ShardSpec {
        threshold: 0,
        balanced: false,
    };
}

/// A reusable plan-pass output buffer, pooled through a [`ScratchArena`].
/// The contract that makes sharding sound: planning row range `[a, b)`
/// into a cleared buffer, for any partition of a cluster into consecutive
/// ranges, concatenates (in range order) to exactly the plan a single
/// unsharded pass produces.
pub(crate) trait PlanBuffer: Default + Send {
    /// Resets to the empty state, retaining allocations.
    fn clear(&mut self);
}

/// Deterministic shard boundaries for `rows`: returns consecutive,
/// non-empty ranges covering `rows` exactly. One range when sharding is
/// off or the cluster is small enough.
///
/// With `spec.balanced` and a CSR `pattern`, cut points fall where the
/// cumulative non-zero count over `rows` crosses `k/n_shards` of the
/// range's total — a degree-aware partition that keeps shard *work*
/// (not row count) even under skew. Without a pattern (dense operands)
/// or with `balanced` off, cuts fall every `threshold` rows.
///
/// `align > 1` snaps every interior cut down to a multiple of `align`
/// rows from `rows.start` (GCNAX strips must not straddle shards).
pub(crate) fn shard_ranges(
    pattern: Option<&CsrPattern>,
    rows: Range<usize>,
    spec: ShardSpec,
    align: usize,
) -> Vec<Range<usize>> {
    let len = rows.len();
    if spec.threshold == 0 || len <= spec.threshold {
        return vec![rows];
    }
    let align = align.max(1);
    let n_shards = len.div_ceil(spec.threshold);
    let mut out = Vec::with_capacity(n_shards);
    let mut lo = rows.start;
    if let (true, Some(p)) = (spec.balanced, pattern) {
        let indptr = p.indptr();
        let base = indptr[rows.start];
        let total = indptr[rows.end] - base;
        for k in 1..n_shards {
            let target = base + (total as u128 * k as u128 / n_shards as u128) as usize;
            // First row boundary whose cumulative nnz reaches the target.
            let cut = rows.start
                + indptr[rows.start..=rows.end]
                    .partition_point(|&cum| cum < target)
                    .min(len);
            // Snap to the strip grain, keep cuts strictly increasing.
            let cut = rows.start + ((cut - rows.start) / align) * align;
            if cut > lo && cut < rows.end {
                out.push(lo..cut);
                lo = cut;
            }
        }
    } else {
        let step = spec.threshold.div_ceil(align) * align;
        while lo + step < rows.end {
            out.push(lo..lo + step);
            lo += step;
        }
    }
    out.push(lo..rows.end);
    out
}

/// Drives a *pure* plan pass over `ranges` overlapped with replay:
/// `produce` plans each range into a pooled buffer (in parallel, ahead of
/// the consumer through a bounded-depth queue) while `consume` replays
/// the buffers strictly in range order on the calling thread. The ordered
/// merge makes the result bit-identical to planning and replaying each
/// range back to back serially, which is what `GROW_SERIAL=1` does.
pub(crate) fn plan_replay<B, P, C>(
    pool: &ScratchArena<B>,
    ranges: Vec<Range<usize>>,
    produce: P,
    mut consume: C,
) where
    B: PlanBuffer,
    P: Fn(Range<usize>, &mut B) + Sync,
    C: FnMut(Range<usize>, &B),
{
    exec::bounded_pipeline(
        ranges,
        0,
        |_, range: Range<usize>| {
            let mut buf = pool.checkout();
            buf.clear();
            produce(range.clone(), &mut buf);
            (range, buf)
        },
        |_, (range, buf)| consume(range, &buf),
    );
}

/// Like [`plan_replay`] for *stateful* plan passes (e.g. a cache model
/// walked sequentially): `produce` runs on one dedicated thread, strictly
/// in range order, so it may carry mutable state across ranges; replay
/// still overlaps on the calling thread.
pub(crate) fn plan_replay_seq<B, P, C>(
    pool: &ScratchArena<B>,
    ranges: Vec<Range<usize>>,
    mut produce: P,
    mut consume: C,
) where
    B: PlanBuffer,
    P: FnMut(Range<usize>, &mut B) + Send,
    C: FnMut(Range<usize>, &B),
{
    exec::bounded_pipeline_seq(
        ranges,
        0,
        move |_, range: Range<usize>| {
            let mut buf = pool.checkout();
            buf.clear();
            produce(range.clone(), &mut buf);
            (range, buf)
        },
        |_, (range, buf)| consume(range, &buf),
    );
}

/// Cross-layer plan retention cap, in total plan entries per workload
/// (adjacency non-zeros plus per-row records). The aggregation plan is a
/// pure function of the adjacency, so engines cache it at the first layer
/// and replay it at later ones — but only for workloads small enough that
/// the retained plans stay cheap; bigger runs still get sharding and
/// overlap, just not retention. Purely a memory/throughput knob: the
/// replay consumes identical plan data either way.
pub(crate) const PLAN_REUSE_MAX_OPS: usize = 1 << 22;

/// A capacity-bounded, session-pool-scoped cache of layer-invariant
/// aggregation plans — the cross-*job* generalization of the per-run
/// retention above. Each entry is one engine family's per-cluster plan
/// slot array (`Vec<OnceLock<T>>`), keyed like the result cache by the
/// (dataset, partition, engine-alignment) prefix that makes two jobs'
/// plans interchangeable. Jobs sharing a prefix skip the plan pass
/// entirely on every cluster whose slot is already populated.
///
/// Thread-safe: lookups take one short mutex hold (the map), then all
/// plan work happens lock-free through the returned `Arc`'d slots. Hit
/// and miss counters are aggregate-deterministic — for a fixed job set,
/// total hits equal total requests minus distinct keys, regardless of
/// which concurrent worker populated a slot first.
///
/// Eviction is LRU over whole entries with a deterministic `(last_use,
/// key)` tie-break; in-flight jobs keep their slot array alive through
/// the `Arc`, so eviction is always safe.
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

struct PlanCacheInner {
    entries: HashMap<String, PlanCacheEntry>,
    clock: u64,
}

struct PlanCacheEntry {
    slots: Arc<dyn Any + Send + Sync>,
    last_use: u64,
}

impl PlanCache {
    /// Default entry bound: enough for every (dataset, partition,
    /// engine-family) combination a realistic fleet mixes, small enough
    /// that retained plans stay far below one workload's footprint.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(PlanCacheInner {
                entries: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        // A panicked holder only ever poisons between pure map
        // operations; the map stays structurally sound.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The slot array for `key`, shared across every job that asks for
    /// the same key: get-or-insert of `len` empty `OnceLock`s. A
    /// pre-existing entry counts as a hit, an allocation as a miss.
    pub fn slots<T: Send + Sync + 'static>(
        &self,
        key: String,
        len: usize,
    ) -> Arc<Vec<OnceLock<T>>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        if let Some(entry) = inner.entries.get_mut(&key) {
            if let Ok(slots) = Arc::clone(&entry.slots).downcast::<Vec<OnceLock<T>>>() {
                debug_assert_eq!(slots.len(), len, "len is part of the key");
                entry.last_use = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return slots;
            }
        }
        let slots: Arc<Vec<OnceLock<T>>> = Arc::new((0..len).map(|_| OnceLock::new()).collect());
        inner.entries.insert(
            key.clone(),
            PlanCacheEntry {
                slots: Arc::clone(&slots) as Arc<dyn Any + Send + Sync>,
                last_use: now,
            },
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        while inner.entries.len() > self.capacity {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(k, e)| (e.last_use, (*k).clone()))
                .map(|(k, _)| k.clone())
                .expect("over-capacity cache has a victim besides the newest entry");
            inner.entries.remove(&victim);
        }
        slots
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests served by a pre-existing entry so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that allocated a fresh entry so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Zeroes the hit/miss counters (entries stay cached).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Drops every cached entry (counters keep counting — they describe
    /// the cache's lifetime, not its current contents). In-flight holders
    /// of a slot array keep it alive through their `Arc`.
    pub fn clear(&self) {
        self.lock().entries.clear();
    }
}

impl Default for PlanCache {
    /// A cache bounded to [`PlanCache::DEFAULT_CAPACITY`] entries.
    fn default() -> Self {
        PlanCache::new(PlanCache::DEFAULT_CAPACITY)
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// A [`PlanCache`] handle pre-bound to one prepared workload's cache
/// scope — the (dataset, partition) prefix. Engines append their family
/// discriminator (engine name plus any plan-shaping config, e.g. GCNAX's
/// tile grain) and the slot count, so two engines or two tilings never
/// collide on a key.
#[derive(Clone)]
pub struct PlanCacheScope {
    cache: Arc<PlanCache>,
    scope: String,
}

impl PlanCacheScope {
    /// Binds `cache` to a workload `scope` prefix.
    pub fn new(cache: Arc<PlanCache>, scope: String) -> PlanCacheScope {
        PlanCacheScope { cache, scope }
    }

    /// The slot array for this scope's `family` discriminator.
    pub fn slots<T: Send + Sync + 'static>(
        &self,
        family: &str,
        len: usize,
    ) -> Arc<Vec<OnceLock<T>>> {
        self.cache
            .slots(format!("{}|{family}|{len}", self.scope), len)
    }
}

impl fmt::Debug for PlanCacheScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCacheScope")
            .field("scope", &self.scope)
            .field("cache", &self.cache)
            .finish()
    }
}

/// An epoch-stamped first-touch membership set over `0..universe`:
/// `first_touch(id)` is `true` exactly once per id per epoch. This is the
/// plan-pass model of any demand cache that never evicts (capacity ≥
/// universe): recency is unobservable, so hit/miss collapses to
/// first-touch and the intrusive LRU list bookkeeping can be skipped
/// entirely.
#[derive(Debug, Default)]
pub(crate) struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    /// Empties the set (O(1) amortized: bumps the epoch; re-zeroes only
    /// on universe change or epoch wrap).
    pub(crate) fn reset(&mut self, universe: usize) {
        if self.stamp.len() != universe || self.epoch == u32::MAX {
            self.stamp.clear();
            self.stamp.resize(universe, 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `id`, returning whether it was absent.
    pub(crate) fn first_touch(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, PartitionStrategy};
    use grow_model::DatasetKey;

    fn pattern(nodes: usize) -> CsrPattern {
        let w = DatasetKey::Pubmed.spec().scaled_to(nodes).instantiate(7);
        prepare(&w, PartitionStrategy::None, 4096).adjacency
    }

    fn check_cover(ranges: &[Range<usize>], rows: Range<usize>) {
        assert!(!ranges.is_empty());
        assert_eq!(ranges.first().unwrap().start, rows.start);
        assert_eq!(ranges.last().unwrap().end, rows.end);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "consecutive");
        }
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn off_and_small_clusters_stay_whole() {
        let p = pattern(300);
        for spec in [
            ShardSpec::OFF,
            ShardSpec {
                threshold: 300,
                balanced: true,
            },
        ] {
            assert_eq!(shard_ranges(Some(&p), 0..300, spec, 1), vec![0..300]);
        }
    }

    #[test]
    fn fixed_ranges_cover_and_respect_alignment() {
        let spec = ShardSpec {
            threshold: 100,
            balanced: false,
        };
        let ranges = shard_ranges(None, 10..523, spec, 1);
        check_cover(&ranges, 10..523);
        assert!(ranges[..ranges.len() - 1].iter().all(|r| r.len() == 100));

        // Alignment rounds the step up to a strip multiple.
        let aligned = shard_ranges(None, 0..1000, spec, 128);
        check_cover(&aligned, 0..1000);
        for r in &aligned[..aligned.len() - 1] {
            assert_eq!(r.start % 128, 0);
            assert_eq!(r.end % 128, 0);
        }
    }

    #[test]
    fn balanced_ranges_cover_and_balance_nnz() {
        let p = pattern(1200);
        let rows = 0..p.rows();
        let spec = ShardSpec {
            threshold: 150,
            balanced: true,
        };
        let ranges = shard_ranges(Some(&p), rows.clone(), spec, 1);
        check_cover(&ranges, rows);
        // Each balanced shard's nnz stays within a sane factor of the
        // ideal share (skew permitting) — the point versus fixed cuts.
        let indptr = p.indptr();
        let total = p.nnz();
        let ideal = total as f64 / ranges.len() as f64;
        for r in &ranges {
            let nnz = indptr[r.end] - indptr[r.start];
            assert!(
                (nnz as f64) < 2.5 * ideal + 64.0,
                "shard {r:?} holds {nnz} of {total} nnz across {} shards",
                ranges.len()
            );
        }
    }

    #[test]
    fn balanced_ranges_align_to_strips() {
        let p = pattern(2000);
        let spec = ShardSpec {
            threshold: 256,
            balanced: true,
        };
        let ranges = shard_ranges(Some(&p), 0..2000, spec, 128);
        check_cover(&ranges, 0..2000);
        for r in &ranges[..ranges.len() - 1] {
            assert_eq!((r.end) % 128, 0, "interior cut off the strip grain");
        }
    }

    #[test]
    fn balanced_ranges_handle_empty_rows() {
        // An all-empty range degenerates to one shard rather than
        // emitting empty ranges.
        let p = CsrPattern::empty(600, 600);
        let spec = ShardSpec {
            threshold: 100,
            balanced: true,
        };
        let ranges = shard_ranges(Some(&p), 0..600, spec, 1);
        check_cover(&ranges, 0..600);
    }

    #[test]
    fn auto_spec_is_balanced_fixed_is_not() {
        let w = DatasetKey::Pubmed.spec().scaled_to(2000).instantiate(3);
        let prepared = prepare(&w, PartitionStrategy::None, 4096);
        let auto = ShardRows::Auto.spec(&prepared);
        assert!(auto.balanced);
        assert_eq!(auto.threshold, prepared.auto_shard_rows());
        let fixed = ShardRows::Fixed(64).spec(&prepared);
        assert!(!fixed.balanced);
        assert_eq!(fixed.threshold, 64);
        assert_eq!(ShardRows::Off.spec(&prepared).threshold, 0);
    }

    #[test]
    fn plan_cache_hits_misses_and_evicts_deterministically() {
        let cache = Arc::new(PlanCache::new(2));
        let a = cache.slots::<u32>("a".into(), 4);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let a2 = cache.slots::<u32>("a".into(), 4);
        assert!(Arc::ptr_eq(&a, &a2), "same key shares the slot array");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        a.first().unwrap().set(7).unwrap();
        assert_eq!(a2.first().unwrap().get(), Some(&7), "shared storage");

        let _b = cache.slots::<u32>("b".into(), 4);
        let _c = cache.slots::<u32>("c".into(), 4);
        assert_eq!(cache.len(), 2, "capacity bound holds");
        // "a" was the least recently used entry, so it was evicted; a
        // fresh request misses and re-allocates.
        let a3 = cache.slots::<u32>("a".into(), 4);
        assert!(!Arc::ptr_eq(&a, &a3), "evicted entry re-allocates");
        assert_eq!(a3.first().unwrap().get(), None);
        // The in-flight Arc kept the evicted array alive and intact.
        assert_eq!(a.first().unwrap().get(), Some(&7));

        cache.reset_counters();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.len(), 2, "reset keeps entries");
    }

    #[test]
    fn plan_cache_scope_separates_families_and_scopes() {
        let cache = Arc::new(PlanCache::new(8));
        let s1 = PlanCacheScope::new(Arc::clone(&cache), "w1".into());
        let s2 = PlanCacheScope::new(Arc::clone(&cache), "w2".into());
        let grow = s1.slots::<u32>("grow", 3);
        let gcnax = s1.slots::<u32>("gcnax:32x16", 3);
        let other = s2.slots::<u32>("grow", 3);
        assert!(!Arc::ptr_eq(&grow, &gcnax), "families do not collide");
        assert!(!Arc::ptr_eq(&grow, &other), "scopes do not collide");
        assert!(Arc::ptr_eq(&grow, &s1.slots::<u32>("grow", 3)));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn stamp_set_first_touch_semantics() {
        let mut s = StampSet::default();
        s.reset(10);
        assert!(s.first_touch(3));
        assert!(!s.first_touch(3));
        assert!(s.first_touch(9));
        s.reset(10);
        assert!(s.first_touch(3), "reset empties the set");
        s.reset(4);
        assert!(s.first_touch(3), "universe change re-zeroes");
    }

    #[test]
    fn drivers_merge_in_order_and_match_serial() {
        #[derive(Debug, Default)]
        struct Buf(Vec<usize>);
        impl PlanBuffer for Buf {
            fn clear(&mut self) {
                self.0.clear();
            }
        }
        let pool: ScratchArena<Buf> = ScratchArena::new();
        let ranges: Vec<Range<usize>> = (0..20).map(|i| i * 10..(i + 1) * 10).collect();
        let run = |seq: bool| {
            grow_sim::exec::with_workers(4, || {
                let mut out = Vec::new();
                let produce = |range: Range<usize>, buf: &mut Buf| buf.0.extend(range);
                let consume = |_: Range<usize>, buf: &Buf| out.extend_from_slice(&buf.0);
                if seq {
                    plan_replay_seq(&pool, ranges.clone(), produce, consume);
                } else {
                    plan_replay(&pool, ranges.clone(), produce, consume);
                }
                out
            })
        };
        let expect: Vec<usize> = (0..200).collect();
        assert_eq!(run(false), expect);
        assert_eq!(run(true), expect);
    }
}
