//! [`AsyncService`] — the always-on, asynchronous front end of the
//! serving layer.
//!
//! [`BatchService`] is synchronous and batch-scoped: callers assemble a
//! job list, block through `run_batch`, and get every result at once. An
//! always-on deployment needs the opposite shape — submissions arriving
//! at any time, an immediate [`Ticket`] per submission, and each
//! [`JobResult`] delivered the moment its job completes. `AsyncService`
//! provides that shape on plain `std` (threads + `mpsc` + `Condvar`; the
//! workspace builds without crates.io, so there is no tokio), layered on
//! the same `BatchService` internals:
//!
//! * **Priority classes + admission control.** Submissions enter one of
//!   three FIFO queues ([`Priority::High`]/[`Priority::Normal`]/
//!   [`Priority::Low`]); the worker always drains the highest non-empty
//!   class. The pending set is bounded by
//!   [`AsyncConfig::queue_capacity`]; a submission over the bound is
//!   rejected immediately with [`SubmitError::QueueFull`] — back-pressure
//!   by refusal, never by blocking the submitter.
//! * **Bounded session pool.** [`AsyncConfig::session_capacity`] forwards
//!   to [`BatchService::with_session_capacity`]'s LRU bound, so an
//!   always-on process does not accumulate one pooled workload per
//!   distinct recipe it ever saw.
//! * **Persistent results.** Attach a
//!   [`ResultStore`](crate::ResultStore) to the inner `BatchService` and
//!   repeated queries are served across process restarts without running
//!   a simulation.
//!
//! **Bit-identity contract.** The worker processes one job at a time, so
//! each simulation keeps its full inner cluster fan-out through
//! [`parallel_map`](grow_sim::exec::parallel_map) — exactly the one-level
//! rule `run_batch` applies, taken to the single-job grain. Reports are
//! bit-identical between serial and parallel execution by the simulator's
//! determinism contract, so draining an `AsyncService` yields reports
//! byte-for-byte equal to `BatchService::run_batch` over the same jobs,
//! under both `GROW_SERIAL=1` and any thread count. The worker thread
//! replays the spawning thread's `with_mode`/`with_workers` overrides via
//! [`ExecContext`], so scoped test overrides apply to async runs too.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use grow_sim::exec::ExecContext;

use crate::batch::{BatchService, JobResult, JobSpec, ServiceStats};

/// Scheduling class of a submission: the worker always serves the
/// highest non-empty class, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Served before everything else (interactive queries).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when nothing else waits (background sweeps).
    Low,
}

impl Priority {
    /// Queue slot of this class (0 = served first).
    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Configuration of an [`AsyncService`].
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Maximum number of admitted-but-uncompleted jobs (queued plus in
    /// flight); a submission over the bound is rejected with
    /// [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// LRU bound for the inner session pool (`None` keeps whatever the
    /// wrapped [`BatchService`] was configured with).
    pub session_capacity: Option<usize>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            queue_capacity: 1024,
            session_capacity: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending set is at capacity; resubmit after draining tickets.
    QueueFull {
        /// The configured [`AsyncConfig::queue_capacity`].
        capacity: usize,
        /// Admitted-but-uncompleted jobs at rejection time.
        pending: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, pending } => write!(
                f,
                "pending queue full ({pending} of {capacity} slots in use)"
            ),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A claim on one submitted job's eventual [`JobResult`], returned
/// immediately by [`AsyncService::submit`]. The result is delivered the
/// moment the job completes, independent of every other submission.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<JobResult>,
}

impl Ticket {
    /// The submission id (also stamped into the delivered
    /// [`JobResult::index`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job completes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the service was dropped (not
    /// [`finish`](AsyncService::finish)ed) before the job ran.
    pub fn wait(self) -> JobResult {
        self.rx
            .recv()
            .expect("service dropped before completing this job")
    }

    /// Returns the result if the job has already completed, without
    /// blocking. At most one result is ever delivered per ticket: after
    /// this returns `Some`, [`wait`](Self::wait) would panic.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.rx.try_recv().ok()
    }
}

/// One admitted submission parked in the priority queues.
struct Submission {
    id: u64,
    job: JobSpec,
    tx: Sender<JobResult>,
}

/// The queues and lifecycle flags shared between submitters and the
/// worker thread.
struct QueueState {
    /// One FIFO per [`Priority`], indexed by [`Priority::index`].
    queues: [VecDeque<Submission>; 3],
    /// Admitted-but-uncompleted jobs (queued plus in flight).
    pending: usize,
    /// Set by [`AsyncService::finish`]: stop after draining the queues.
    stopping: bool,
    /// Set by `Drop`: stop now, discarding queued submissions.
    abort: bool,
}

impl QueueState {
    /// Pops the oldest submission of the highest non-empty class.
    fn pop(&mut self) -> Option<Submission> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().expect("queue state poisoned")
    }
}

/// The always-on asynchronous serving front end. See the
/// [module docs](self) for the design and the bit-identity contract.
///
/// ```
/// use grow_model::DatasetKey;
/// use grow_serve::{AsyncConfig, AsyncService, BatchService, JobSpec};
///
/// let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
/// let spec = DatasetKey::Cora.spec().scaled_to(300);
/// let ticket = service.submit(JobSpec::new(spec, 42, "grow")).unwrap();
/// let result = ticket.wait();
/// assert!(result.report().is_some());
/// let batch = service.finish(); // drain + recover the inner BatchService
/// assert_eq!(batch.stats().simulations_run, 1);
/// ```
pub struct AsyncService {
    shared: Arc<Shared>,
    service: Option<Arc<Mutex<BatchService>>>,
    completions: Arc<Mutex<Vec<u64>>>,
    worker: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl fmt::Debug for AsyncService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncService")
            .field("capacity", &self.capacity)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

impl AsyncService {
    /// Spawns the worker thread and starts accepting submissions. The
    /// wrapped `service` brings its caches, counters, and any attached
    /// [`ResultStore`](crate::ResultStore) with it.
    pub fn start(mut service: BatchService, config: AsyncConfig) -> Self {
        if config.session_capacity.is_some() {
            service.set_session_capacity(config.session_capacity);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                pending: 0,
                stopping: false,
                abort: false,
            }),
            cv: Condvar::new(),
        });
        let service = Arc::new(Mutex::new(service));
        let completions = Arc::new(Mutex::new(Vec::new()));
        // The worker replays this thread's execution overrides, so a
        // `with_mode(ExecMode::Serial, ..)` scope around the service
        // applies to async runs exactly as it would to `run_batch`.
        let ctx = ExecContext::capture();
        let worker = {
            let shared = Arc::clone(&shared);
            let service = Arc::clone(&service);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name("grow-serve-worker".to_string())
                .spawn(move || ctx.scope(|| worker_loop(&shared, &service, &completions)))
                .expect("spawn serving worker")
        };
        AsyncService {
            shared,
            service: Some(service),
            completions,
            worker: Some(worker),
            next_id: AtomicU64::new(0),
            capacity: config.queue_capacity.max(1),
        }
    }

    /// Submits one job at [`Priority::Normal`]; returns its [`Ticket`]
    /// immediately (never blocks on compute).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] over the admission bound,
    /// [`SubmitError::ShuttingDown`] after [`finish`](Self::finish) began.
    pub fn submit(&self, job: JobSpec) -> Result<Ticket, SubmitError> {
        self.submit_with(job, Priority::Normal)
    }

    /// [`submit`](Self::submit) with an explicit [`Priority`] class.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with(&self, job: JobSpec, priority: Priority) -> Result<Ticket, SubmitError> {
        let mut st = self.shared.lock();
        if st.stopping {
            return Err(SubmitError::ShuttingDown);
        }
        if st.pending >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
                pending: st.pending,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        st.queues[priority.index()].push_back(Submission { id, job, tx });
        st.pending += 1;
        drop(st);
        self.shared.cv.notify_all();
        Ok(Ticket { id, rx })
    }

    /// Admitted-but-uncompleted jobs right now (queued plus in flight).
    pub fn pending(&self) -> usize {
        self.shared.lock().pending
    }

    /// The admission bound ([`AsyncConfig::queue_capacity`]).
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Submission ids in completion order — the service's observable
    /// processing sequence (priority classes reorder it relative to
    /// submission order).
    pub fn completed_ids(&self) -> Vec<u64> {
        self.completions
            .lock()
            .expect("completion log poisoned")
            .clone()
    }

    /// Cumulative counters of the inner [`BatchService`]. Blocks while a
    /// simulation is in flight (the worker holds the service for the
    /// duration of each job).
    pub fn stats(&self) -> ServiceStats {
        self.inner().lock().expect("service poisoned").stats()
    }

    /// Drains every queued submission, stops the worker, and returns the
    /// inner [`BatchService`] — with its warmed caches and counters — for
    /// inspection or synchronous reuse.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the worker thread.
    pub fn finish(mut self) -> BatchService {
        {
            let mut st = self.shared.lock();
            st.stopping = true;
        }
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let service = self.service.take().expect("finish runs once");
        let Ok(service) = Arc::try_unwrap(service) else {
            unreachable!("worker has exited, so the service has one owner");
        };
        service.into_inner().expect("service poisoned")
    }

    fn inner(&self) -> &Mutex<BatchService> {
        self.service.as_ref().expect("service present until finish")
    }
}

impl Drop for AsyncService {
    fn drop(&mut self) {
        // `finish` already joined the worker; otherwise stop it promptly,
        // discarding queued submissions (their tickets' senders drop, so
        // a blocked `Ticket::wait` panics rather than hanging forever).
        if let Some(worker) = self.worker.take() {
            {
                let mut st = self.shared.lock();
                st.stopping = true;
                st.abort = true;
            }
            self.shared.cv.notify_all();
            let _ = worker.join();
        }
    }
}

/// The worker: pop the highest-priority submission, run it as a batch of
/// one (full inner fan-out — the one-level rule at the single-job grain),
/// deliver the result, repeat until stopped.
fn worker_loop(shared: &Shared, service: &Mutex<BatchService>, completions: &Mutex<Vec<u64>>) {
    loop {
        let submission = {
            let mut st = shared.lock();
            loop {
                if st.abort {
                    return;
                }
                if let Some(submission) = st.pop() {
                    break submission;
                }
                if st.stopping {
                    return;
                }
                st = shared.cv.wait(st).expect("queue state poisoned");
            }
        };
        let mut result = service
            .lock()
            .expect("service poisoned")
            .run_one(&submission.job);
        // `run_one` numbers within its one-job batch; the submission id is
        // the meaningful index at this layer.
        result.index = submission.id as usize;
        completions
            .lock()
            .expect("completion log poisoned")
            .push(submission.id);
        {
            let mut st = shared.lock();
            st.pending -= 1;
        }
        shared.cv.notify_all();
        // The ticket may be gone (dropped without waiting); fine.
        let _ = submission.tx.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission(id: u64) -> Submission {
        let (tx, _rx) = mpsc::channel();
        Submission {
            id,
            job: JobSpec::new(
                grow_model::DatasetKey::Cora.spec().scaled_to(300),
                id,
                "grow",
            ),
            tx,
        }
    }

    #[test]
    fn queue_pops_priority_classes_in_order() {
        let mut state = QueueState {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            pending: 0,
            stopping: false,
            abort: false,
        };
        state.queues[Priority::Low.index()].push_back(submission(0));
        state.queues[Priority::Normal.index()].push_back(submission(1));
        state.queues[Priority::High.index()].push_back(submission(2));
        state.queues[Priority::High.index()].push_back(submission(3));
        state.queues[Priority::Normal.index()].push_back(submission(4));
        let order: Vec<u64> = std::iter::from_fn(|| state.pop()).map(|s| s.id).collect();
        assert_eq!(order, [2, 3, 1, 4, 0], "High FIFO, then Normal, then Low");
    }

    #[test]
    fn submit_after_finish_flag_is_rejected() {
        let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
        {
            let mut st = service.shared.lock();
            st.stopping = true;
        }
        let spec = grow_model::DatasetKey::Cora.spec().scaled_to(300);
        assert_eq!(
            service.submit(JobSpec::new(spec, 1, "grow")).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn submit_error_messages_name_the_bound() {
        let e = SubmitError::QueueFull {
            capacity: 4,
            pending: 4,
        };
        assert_eq!(e.to_string(), "pending queue full (4 of 4 slots in use)");
        assert_eq!(
            SubmitError::ShuttingDown.to_string(),
            "service is shutting down"
        );
    }
}
